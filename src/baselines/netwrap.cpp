#include "baselines/netwrap.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/assert.h"

namespace mcharge::baselines {

NetwrapScheduler::NetwrapScheduler(double travel_weight)
    : travel_weight_(travel_weight) {
  MCHARGE_ASSERT(travel_weight >= 0.0 && travel_weight <= 1.0,
                 "travel weight must be in [0, 1]");
}

sched::ChargingPlan NetwrapScheduler::plan(
    const model::ChargingProblem& problem) const {
  const std::size_t n = problem.size();
  const std::size_t k = problem.num_chargers();
  sched::ChargingPlan plan;
  plan.mode = sched::ChargeMode::kOneToOne;
  plan.tours.assign(k, {});
  if (n == 0) return plan;

  struct McvState {
    double time;
    geom::Point at;
    std::uint32_t id;
    bool operator>(const McvState& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };
  std::priority_queue<McvState, std::vector<McvState>, std::greater<McvState>>
      idle;
  for (std::uint32_t j = 0; j < k; ++j) idle.push({0.0, problem.depot(), j});

  std::vector<char> assigned(n, 0);
  std::size_t remaining = n;
  while (remaining > 0) {
    McvState mcv = idle.top();
    idle.pop();

    // Normalization constants over the remaining candidates.
    double max_travel = 0.0;
    double max_life = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (assigned[v]) continue;
      max_travel = std::max(
          max_travel, geom::distance(mcv.at, problem.position(v)));
      const double life = problem.residual_lifetime(v);
      if (life != std::numeric_limits<double>::infinity()) {
        max_life = std::max(max_life, life);
      }
    }

    double best_score = std::numeric_limits<double>::infinity();
    std::uint32_t best = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (assigned[v]) continue;
      const double travel = geom::distance(mcv.at, problem.position(v));
      const double life = problem.residual_lifetime(v);
      const double norm_travel = max_travel > 0.0 ? travel / max_travel : 0.0;
      double norm_life = 0.0;
      if (max_life > 0.0 && life != std::numeric_limits<double>::infinity()) {
        norm_life = life / max_life;
      } else if (life == std::numeric_limits<double>::infinity()) {
        norm_life = 1.0;
      }
      const double score =
          travel_weight_ * norm_travel + (1.0 - travel_weight_) * norm_life;
      if (score < best_score) {
        best_score = score;
        best = v;
      }
    }

    assigned[best] = 1;
    --remaining;
    plan.tours[mcv.id].push_back(best);
    const double travel_time =
        geom::distance(mcv.at, problem.position(best)) / problem.speed();
    mcv.time += travel_time + problem.charge_seconds(best);
    mcv.at = problem.position(best);
    idle.push(mcv);
  }
  return plan;
}

}  // namespace mcharge::baselines
