#include "baselines/kminmax.h"

namespace mcharge::baselines {

KMinMaxScheduler::KMinMaxScheduler(tsp::MinMaxTourOptions options)
    : options_(std::move(options)) {}

sched::ChargingPlan KMinMaxScheduler::plan(
    const model::ChargingProblem& problem) const {
  tsp::TourProblem tour_problem;
  tour_problem.depot = problem.depot();
  tour_problem.speed = problem.speed();
  tour_problem.sites = problem.positions();
  tour_problem.service = problem.charge_seconds();

  const tsp::SplitResult split =
      tsp::min_max_k_tours(tour_problem, problem.num_chargers(), options_);

  sched::ChargingPlan plan;
  plan.mode = sched::ChargeMode::kOneToOne;
  plan.tours.reserve(split.tours.size());
  for (const auto& tour : split.tours) {
    plan.tours.emplace_back(tour.begin(), tour.end());
  }
  return plan;
}

}  // namespace mcharge::baselines
