#include "viz/render.h"

#include <algorithm>
#include <sstream>

#include "viz/svg.h"

namespace mcharge::viz {

namespace {

/// Pads a bounding box for markers near the edge.
constexpr double kMargin = 4.0;

void draw_station(SvgCanvas& svg, geom::Point at, const std::string& color,
                  const std::string& label) {
  svg.rect(at.x - 1.5, at.y - 1.5, 3.0, 3.0, color, 0.9);
  svg.text(at.x + 2.0, at.y - 2.0, label, 3.0, color);
}

}  // namespace

std::string mcv_color(std::size_t k) {
  static const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c",
                                   "#9467bd", "#ff7f0e", "#17becf",
                                   "#8c564b", "#e377c2"};
  return kPalette[k % 8];
}

std::string render_instance_svg(const model::WrsnInstance& instance) {
  const auto& config = instance.config;
  SvgCanvas svg(-kMargin, -kMargin, config.field_width + 2 * kMargin,
                config.field_height + 2 * kMargin);
  double max_w = 1e-12;
  for (double w : instance.consumption_w) max_w = std::max(max_w, w);
  for (std::size_t v = 0; v < instance.num_sensors(); ++v) {
    const double t = instance.consumption_w[v] / max_w;
    svg.circle(instance.positions[v].x, instance.positions[v].y, 0.7,
               lerp_color("#2ca02c", "#d62728", t), 0.85);
  }
  draw_station(svg, config.base_station, "#1f1f9f", "BS");
  if (!(config.depot == config.base_station)) {
    draw_station(svg, config.depot, "#9f1f1f", "depot");
  }
  std::ostringstream caption;
  caption << instance.num_sensors() << " sensors; color = power draw (max "
          << max_w * 1e3 << " mW)";
  svg.text(0.0, config.field_height + kMargin - 1.0, caption.str(), 3.0);
  return svg.finish();
}

std::string render_schedule_svg(const model::ChargingProblem& problem,
                                const sched::ChargingSchedule& schedule) {
  geom::BoundingBox box;
  box.expand(problem.depot());
  for (const auto& p : problem.positions()) box.expand(p);
  const double width = std::max(box.width(), 1.0) + 2 * kMargin;
  const double height = std::max(box.height(), 1.0) + 2 * kMargin;
  SvgCanvas svg(box.lo.x - kMargin, box.lo.y - kMargin, width, height);

  // Coverage disks and tour polylines per MCV.
  for (std::size_t k = 0; k < schedule.mcvs.size(); ++k) {
    const std::string color = mcv_color(k);
    const auto& mcv = schedule.mcvs[k];
    std::ostringstream points;
    points << problem.depot().x << ',' << problem.depot().y << ' ';
    for (const auto& s : mcv.sojourns) {
      const geom::Point at = problem.position(s.location);
      svg.circle(at.x, at.y, problem.gamma(), color, 0.12);
      points << at.x << ',' << at.y << ' ';
    }
    points << problem.depot().x << ',' << problem.depot().y;
    if (!mcv.sojourns.empty()) {
      svg.polyline(points.str(), color, 0.4, 0.8);
    }
  }

  // Sensors: shade by charging need; ring uncharged ones in red.
  double max_t = 1e-12;
  for (std::uint32_t v = 0; v < problem.size(); ++v) {
    max_t = std::max(max_t, problem.charge_seconds(v));
  }
  for (std::uint32_t v = 0; v < problem.size(); ++v) {
    const double t = problem.charge_seconds(v) / max_t;
    const bool charged = v < schedule.charged_at.size() &&
                         schedule.charged_at[v] != sched::kNeverCharged;
    svg.circle(problem.position(v).x, problem.position(v).y, 0.5,
               lerp_color("#cccccc", "#333333", t), 0.9,
               charged ? "none" : "#d62728", charged ? 0.0 : 0.3);
  }
  draw_station(svg, problem.depot(), "#9f1f1f", "depot");

  std::ostringstream caption;
  caption << schedule.mcvs.size() << " MCVs, " << schedule.num_stops()
          << " stops, longest delay " << schedule.longest_delay() / 3600.0
          << " h";
  svg.text(box.lo.x - kMargin + 1.0, box.lo.y - kMargin + 3.0, caption.str(),
           3.0);
  return svg.finish();
}

}  // namespace mcharge::viz
