// Minimal SVG document builder (no external dependencies).
//
// Emits standalone SVG 1.1; coordinates are in user units with a viewBox,
// so callers can draw directly in field meters.
#pragma once

#include <sstream>
#include <string>

namespace mcharge::viz {

class SvgCanvas {
 public:
  /// A document with viewBox "min_x min_y width height". `pixel_width` is
  /// the rendered width; height follows the aspect ratio.
  SvgCanvas(double min_x, double min_y, double width, double height,
            double pixel_width = 800.0);

  void circle(double cx, double cy, double r, const std::string& fill,
              double fill_opacity = 1.0, const std::string& stroke = "none",
              double stroke_width = 0.0);
  void line(double x1, double y1, double x2, double y2,
            const std::string& stroke, double width,
            double opacity = 1.0);
  void rect(double x, double y, double w, double h, const std::string& fill,
            double opacity = 1.0);
  /// Polyline through the given points ("x,y x,y ..." built by caller via
  /// add_point). Begin with begin_polyline, feed points, then end.
  void polyline(const std::string& points, const std::string& stroke,
                double width, double opacity = 1.0);
  void text(double x, double y, const std::string& content, double size,
            const std::string& fill = "#333333");

  /// Finalizes and returns the document. The canvas may not be reused.
  std::string finish();

  /// Writes finish() to a file; false on I/O failure.
  bool write(const std::string& path);

 private:
  std::ostringstream body_;
  bool finished_ = false;
};

/// Escapes <, >, & for text content.
std::string escape_text(const std::string& raw);

/// Linear two-color ramp (t in [0,1]) between hex colors "#rrggbb".
std::string lerp_color(const std::string& from, const std::string& to,
                       double t);

}  // namespace mcharge::viz
