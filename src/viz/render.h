// Domain renderers: WRSN instances and charging schedules as SVG.
#pragma once

#include <string>

#include "model/charging_problem.h"
#include "model/network.h"
#include "schedule/plan.h"

namespace mcharge::viz {

/// The sensor field: sensors colored by power draw (green = cool, red =
/// hot), base station and depot markers, comm-range legend.
std::string render_instance_svg(const model::WrsnInstance& instance);

/// One executed charging round: per-MCV tour polylines (distinct colors),
/// coverage disks at every sojourn, sensors shaded by charging need, depot
/// marker. Sensors never charged by the plan are ringed in red.
std::string render_schedule_svg(const model::ChargingProblem& problem,
                                const sched::ChargingSchedule& schedule);

/// Distinct color for MCV k (cycles after 8).
std::string mcv_color(std::size_t k);

}  // namespace mcharge::viz
