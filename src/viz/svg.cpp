#include "viz/svg.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>

#include "util/assert.h"

namespace mcharge::viz {

SvgCanvas::SvgCanvas(double min_x, double min_y, double width, double height,
                     double pixel_width) {
  MCHARGE_ASSERT(width > 0.0 && height > 0.0, "svg canvas must be non-empty");
  const double pixel_height = pixel_width * height / width;
  body_ << std::setprecision(8);
  body_ << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << pixel_width
        << "\" height=\"" << pixel_height << "\" viewBox=\"" << min_x << ' '
        << min_y << ' ' << width << ' ' << height << "\">\n";
  body_ << "<rect x=\"" << min_x << "\" y=\"" << min_y << "\" width=\""
        << width << "\" height=\"" << height << "\" fill=\"#fcfcfa\"/>\n";
}

void SvgCanvas::circle(double cx, double cy, double r, const std::string& fill,
                       double fill_opacity, const std::string& stroke,
                       double stroke_width) {
  body_ << "<circle cx=\"" << cx << "\" cy=\"" << cy << "\" r=\"" << r
        << "\" fill=\"" << fill << "\" fill-opacity=\"" << fill_opacity
        << '"';
  if (stroke != "none" && stroke_width > 0.0) {
    body_ << " stroke=\"" << stroke << "\" stroke-width=\"" << stroke_width
          << '"';
  }
  body_ << "/>\n";
}

void SvgCanvas::line(double x1, double y1, double x2, double y2,
                     const std::string& stroke, double width, double opacity) {
  body_ << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
        << "\" y2=\"" << y2 << "\" stroke=\"" << stroke << "\" stroke-width=\""
        << width << "\" stroke-opacity=\"" << opacity << "\"/>\n";
}

void SvgCanvas::rect(double x, double y, double w, double h,
                     const std::string& fill, double opacity) {
  body_ << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
        << "\" height=\"" << h << "\" fill=\"" << fill << "\" fill-opacity=\""
        << opacity << "\"/>\n";
}

void SvgCanvas::polyline(const std::string& points, const std::string& stroke,
                         double width, double opacity) {
  body_ << "<polyline points=\"" << points << "\" fill=\"none\" stroke=\""
        << stroke << "\" stroke-width=\"" << width << "\" stroke-opacity=\""
        << opacity << "\"/>\n";
}

void SvgCanvas::text(double x, double y, const std::string& content,
                     double size, const std::string& fill) {
  body_ << "<text x=\"" << x << "\" y=\"" << y << "\" font-size=\"" << size
        << "\" font-family=\"sans-serif\" fill=\"" << fill << "\">"
        << escape_text(content) << "</text>\n";
}

std::string SvgCanvas::finish() {
  MCHARGE_ASSERT(!finished_, "SvgCanvas::finish called twice");
  finished_ = true;
  body_ << "</svg>\n";
  return body_.str();
}

bool SvgCanvas::write(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << finish();
  return static_cast<bool>(out);
}

std::string escape_text(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string lerp_color(const std::string& from, const std::string& to,
                       double t) {
  MCHARGE_ASSERT(from.size() == 7 && from[0] == '#' && to.size() == 7 &&
                     to[0] == '#',
                 "colors must be #rrggbb");
  t = std::clamp(t, 0.0, 1.0);
  auto channel = [&](int offset) {
    const int a = static_cast<int>(std::stoul(from.substr(offset, 2), nullptr, 16));
    const int b = static_cast<int>(std::stoul(to.substr(offset, 2), nullptr, 16));
    return static_cast<int>(std::lround(a + (b - a) * t));
  };
  char buffer[8];
  std::snprintf(buffer, sizeof buffer, "#%02x%02x%02x", channel(1), channel(3),
                channel(5));
  return buffer;
}

}  // namespace mcharge::viz
