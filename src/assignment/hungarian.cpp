#include "assignment/hungarian.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/assert.h"

namespace mcharge::assignment {

AssignmentResult solve_assignment(
    const std::vector<std::vector<double>>& cost) {
  const std::size_t rows = cost.size();
  AssignmentResult result;
  if (rows == 0) return result;
  const std::size_t cols = cost[0].size();
  MCHARGE_ASSERT(rows <= cols, "assignment requires rows <= cols");
  for (const auto& row : cost) {
    MCHARGE_ASSERT(row.size() == cols, "cost matrix must be rectangular");
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // 1-based potentials formulation (classic formulation with virtual col 0).
  std::vector<double> u(rows + 1, 0.0), v(cols + 1, 0.0);
  std::vector<std::size_t> match_col(cols + 1, 0);  // row matched to col
  std::vector<std::size_t> way(cols + 1, 0);

  for (std::size_t i = 1; i <= rows; ++i) {
    match_col[0] = i;
    std::size_t j0 = 0;
    std::vector<double> min_v(cols + 1, kInf);
    std::vector<char> used(cols + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = match_col[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= cols; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < min_v[j]) {
          min_v[j] = cur;
          way[j] = j0;
        }
        if (min_v[j] < delta) {
          delta = min_v[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= cols; ++j) {
        if (used[j]) {
          u[match_col[j]] += delta;
          v[j] -= delta;
        } else {
          min_v[j] -= delta;
        }
      }
      j0 = j1;
    } while (match_col[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      match_col[j0] = match_col[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.column_of_row.assign(rows, 0);
  for (std::size_t j = 1; j <= cols; ++j) {
    if (match_col[j] != 0) {
      result.column_of_row[match_col[j] - 1] = static_cast<std::uint32_t>(j - 1);
    }
  }
  for (std::size_t i = 0; i < rows; ++i) {
    result.total_cost += cost[i][result.column_of_row[i]];
  }
  return result;
}

AssignmentResult solve_assignment_brute_force(
    const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  MCHARGE_ASSERT(n <= 9, "brute force limited to n <= 9");
  AssignmentResult best;
  if (n == 0) return best;
  MCHARGE_ASSERT(cost[0].size() == n, "brute force requires square matrix");
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  best.total_cost = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += cost[i][perm[i]];
    if (total < best.total_cost) {
      best.total_cost = total;
      best.column_of_row = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace mcharge::assignment
