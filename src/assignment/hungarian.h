// Minimum-cost assignment (Hungarian algorithm, potentials formulation,
// O(n^2 * m)). Used by the K-EDF baseline to dispatch K chargers to the K
// sensors of a group with minimum total travel distance.
#pragma once

#include <cstdint>
#include <vector>

namespace mcharge::assignment {

/// Cost matrix accessor: cost(row, col), rows = workers, cols = tasks.
/// Solves min-cost perfect assignment of `rows` workers to distinct columns
/// out of `cols` (requires rows <= cols). Returns, per row, the chosen
/// column. Complexity O(rows^2 * cols).
struct AssignmentResult {
  std::vector<std::uint32_t> column_of_row;
  double total_cost = 0.0;
};

AssignmentResult solve_assignment(const std::vector<std::vector<double>>& cost);

/// Brute-force reference (permutations); requires rows == cols <= 9.
AssignmentResult solve_assignment_brute_force(
    const std::vector<std::vector<double>>& cost);

}  // namespace mcharge::assignment
