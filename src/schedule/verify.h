// Independent feasibility checking of executed schedules.
//
// The checker re-derives every property from the raw sojourn records and
// the ChargingProblem, sharing no code with the executor, so it can catch
// executor bugs as well as infeasible plans.
#pragma once

#include <string>
#include <vector>

#include "model/charging_problem.h"
#include "schedule/execute.h"
#include "schedule/plan.h"

namespace mcharge::sched {

struct VerifyOptions {
  bool require_full_coverage = true;  ///< every sensor must be charged
  double tolerance = 1e-6;            ///< seconds, for time comparisons
  /// Accept aborted (breakdown-truncated) tours: the MCV's return_time must
  /// then equal its last sojourn's finish (no depot leg) instead of the
  /// depot return. Without this flag an aborted tour is a violation.
  bool allow_partial = false;
  /// The fault bundle the schedule was executed under, if any. The checker
  /// re-derives expected travel legs and charging durations through the
  /// same multipliers; null means fault-free nominal times.
  const ExecutionFaults* faults = nullptr;
};

/// Returns human-readable violations; empty means the schedule is valid.
/// Checks:
///  * timing consistency per MCV (arrival >= previous finish + travel,
///    start >= arrival, finish >= start, return time correct);
///  * node-disjointness (no location visited twice);
///  * charge-set correctness (charged sensors are inside the sojourn's
///    coverage disk in multi-node mode / equal to the location in
///    one-to-one mode; durations equal the max deficit of the set);
///  * each sensor charged at most once, and at least once if
///    require_full_coverage;
///  * multi-node only: the no-simultaneous-charging constraint — no two
///    active sojourns of different MCVs with intersecting coverage disks
///    may overlap in time;
///  * when options.faults carries an enabled MCV energy budget: each
///    MCV's recomputed draw (arrival-leg locomotion + transfer energy per
///    sojourn, + the depot-return leg unless aborted) fits the battery
///    capacity and matches the executor-reported energy_spent_j, and no
///    completed tour carries a breakdown cause.
std::vector<std::string> verify_schedule(const model::ChargingProblem& problem,
                                         const ChargingSchedule& schedule,
                                         const VerifyOptions& options = {});

}  // namespace mcharge::sched
