// Charging plans and timed charging schedules.
//
// A scheduling algorithm outputs a ChargingPlan: one location sequence per
// MCV plus the charging mode. The executor (execute.h) turns a plan into a
// ChargingSchedule with concrete sojourn times, applying the paper's
// de-duplicated charging durations (Eq. (3)) and the no-simultaneous-
// charging constraint (waiting when two MCVs would energize a common
// sensor at once).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "model/charging_problem.h"

namespace mcharge::sched {

/// How an MCV at a sojourn location delivers energy.
enum class ChargeMode {
  /// Multi-node charging (the paper's scheme): an MCV parked at location v
  /// charges every sensor in N_c+(v) simultaneously.
  kMultiNode,
  /// One-to-one charging (the baselines' scheme): the MCV charges only the
  /// sensor it is parked at.
  kOneToOne,
};

/// One location sequence per MCV. Entries index sensors of the
/// ChargingProblem (sojourn locations are co-located with sensors).
struct ChargingPlan {
  ChargeMode mode = ChargeMode::kMultiNode;
  std::vector<std::vector<std::uint32_t>> tours;
  /// Optional per-MCV start positions (same length as `tours`). Empty
  /// means every MCV starts at the depot — the normal round-start case.
  /// Mid-round replanning (core/replan.h) sets them to the MCVs' current
  /// field positions; every tour still ENDS at the depot.
  std::vector<geom::Point> starts;

  std::size_t num_tours() const { return tours.size(); }
  std::size_t total_stops() const;
  /// The start position of MCV k given the problem's depot.
  geom::Point start_of(std::size_t k, geom::Point depot) const;
};

/// A committed stop of one MCV.
struct Sojourn {
  std::uint32_t location = 0;  ///< sensor index the MCV parks at
  double arrival = 0.0;        ///< when the MCV reaches the location
  double start = 0.0;          ///< when charging begins (>= arrival: waits)
  double finish = 0.0;         ///< start + actual charging duration tau'
  std::vector<std::uint32_t> charged;  ///< sensors fully charged here

  double wait() const { return start - arrival; }
  double duration() const { return finish - start; }
};

/// Why a tour ended in the field instead of at the depot.
enum class BreakdownCause {
  kNone,             ///< not aborted, or a recovery recall (no fault)
  kFault,            ///< coin-flip breakdown (ExecutionFaults::breakdown_after)
  kEnergyExhausted,  ///< the MCV battery budget ran out mid-tour
};

/// The timed itinerary of one MCV.
struct McvSchedule {
  std::vector<Sojourn> sojourns;
  double return_time = 0.0;  ///< back at the depot; this is T'(k), Eq. (4)
  /// True when the tour ended in the field instead of at the depot: a
  /// mid-tour breakdown (execute.h's ExecutionFaults) or a recovery
  /// recall (core/replan.h). return_time is then the instant the MCV
  /// stopped executing — no depot leg; vehicle retrieval is outside the
  /// delay metric.
  bool aborted = false;
  /// What ended the tour early. kNone unless `aborted` — and stays kNone
  /// for a recovery recall, which is an instruction, not a failure.
  BreakdownCause abort_cause = BreakdownCause::kNone;
  /// Planned stops this MCV never visited (tour order). Empty unless
  /// `aborted`. Another MCV may still visit them (recovery grafting).
  std::vector<std::uint32_t> skipped;
  /// Joules drawn from the MCV battery over the round, cumulative across
  /// a graft resume (prefix + suffix). 0 unless the execution ran under
  /// an enabled energy::McvBudgetSpec (execute.h).
  double energy_spent_j = 0.0;
};

inline constexpr double kNeverCharged = std::numeric_limits<double>::infinity();

/// A complete executed schedule for one charging round.
struct ChargingSchedule {
  ChargeMode mode = ChargeMode::kMultiNode;
  std::vector<McvSchedule> mcvs;
  /// Resolved start position per MCV (depot unless the plan overrode it).
  std::vector<geom::Point> starts;
  /// Per sensor of the problem: the time it reached full charge
  /// (kNeverCharged if the plan never charged it).
  std::vector<double> charged_at;

  /// Energy use of one MCV over its tour, for fleet sizing.
  struct EnergyUse {
    double delivered_j = 0.0;   ///< wireless energy transferred to sensors
    double locomotion_j = 0.0;  ///< travel energy (move_cost * meters)
  };

  /// max_k T'(k): the objective of the paper.
  double longest_delay() const;
  /// Total waiting injected to satisfy the no-overlap constraint.
  double total_wait() const;
  /// Travel time summed over all MCVs.
  double total_travel(const model::ChargingProblem& problem) const;
  std::size_t num_stops() const;
  /// True iff every sensor got charged.
  bool all_charged() const;
  /// True iff any tour ended in the field (breakdown or recall): the
  /// round executed only part of its plan.
  bool partial() const;
  /// Number of MCVs whose tour was aborted.
  std::size_t num_aborted() const;

  /// Per-MCV energy budget of the executed round: energy radiated while
  /// charging (active duration * the problem's charging rate — the
  /// transmitter runs for the whole sojourn regardless of how many sensors
  /// absorb it) plus locomotion energy at `move_cost_j_per_m`.
  std::vector<EnergyUse> energy_use(const model::ChargingProblem& problem,
                                    double move_cost_j_per_m = 50.0) const;
};

}  // namespace mcharge::sched
