#include "schedule/verify.h"

#include <algorithm>
#include <sstream>

namespace mcharge::sched {

namespace {

std::string fmt(const char* what, std::uint32_t mcv, std::size_t stop,
                const std::string& detail) {
  std::ostringstream os;
  os << what << " (mcv " << mcv << ", stop " << stop << "): " << detail;
  return os.str();
}

}  // namespace

std::vector<std::string> verify_schedule(const model::ChargingProblem& problem,
                                         const ChargingSchedule& schedule,
                                         const VerifyOptions& options) {
  std::vector<std::string> violations;
  const double eps = options.tolerance;

  // --- Per-MCV timing and charge-set checks. ---
  std::vector<int> charged_by(problem.size(), -1);
  std::vector<char> visited(problem.size(), 0);
  for (std::uint32_t k = 0; k < schedule.mcvs.size(); ++k) {
    const auto& mcv = schedule.mcvs[k];
    double clock = 0.0;
    for (std::size_t i = 0; i < mcv.sojourns.size(); ++i) {
      const Sojourn& s = mcv.sojourns[i];
      if (s.location >= problem.size()) {
        violations.push_back(fmt("bad location", k, i, "index out of range"));
        continue;
      }
      if (visited[s.location]) {
        violations.push_back(
            fmt("revisited location", k, i,
                "location " + std::to_string(s.location) + " already used"));
      }
      visited[s.location] = 1;

      const geom::Point start = k < schedule.starts.size()
                                    ? schedule.starts[k]
                                    : problem.depot();
      double travel =
          i == 0 ? geom::distance(start, problem.position(s.location)) /
                       problem.speed()
                 : problem.travel(mcv.sojourns[i - 1].location, s.location);
      if (options.faults) travel *= options.faults->travel_mult(k, i);
      if (s.arrival + eps < clock + travel) {
        violations.push_back(fmt("early arrival", k, i,
                                 "arrival precedes previous finish + travel"));
      }
      if (s.start + eps < s.arrival) {
        violations.push_back(fmt("start before arrival", k, i, ""));
      }
      if (s.finish + eps < s.start) {
        violations.push_back(fmt("negative duration", k, i, ""));
      }

      // Charge set must lie in the coverage disk (multi-node) or be exactly
      // the parked sensor (one-to-one), and the duration must cover the
      // slowest sensor in the set.
      double needed = 0.0;
      for (std::uint32_t u : s.charged) {
        if (u >= problem.size()) {
          violations.push_back(fmt("bad charged sensor", k, i, ""));
          continue;
        }
        needed = std::max(needed, problem.charge_seconds(u));
        const bool in_range =
            schedule.mode == ChargeMode::kMultiNode
                ? std::binary_search(problem.coverage(s.location).begin(),
                                     problem.coverage(s.location).end(), u)
                : u == s.location;
        if (!in_range) {
          violations.push_back(
              fmt("charge outside range", k, i,
                  "sensor " + std::to_string(u) + " not chargeable from " +
                      std::to_string(s.location)));
        }
        if (charged_by[u] != -1) {
          violations.push_back(fmt(
              "double charge", k, i,
              "sensor " + std::to_string(u) + " already charged by mcv " +
                  std::to_string(charged_by[u])));
        } else {
          charged_by[u] = static_cast<int>(k);
        }
      }
      if (options.faults) needed *= options.faults->charge_mult(s.location);
      if (s.finish - s.start + eps < needed) {
        violations.push_back(
            fmt("undercharge", k, i,
                "duration shorter than the largest deficit in the set"));
      }
      clock = s.finish;
    }
    if (mcv.aborted) {
      if (!options.allow_partial) {
        violations.push_back(fmt("aborted tour", k, mcv.sojourns.size(),
                                 "tour truncated but partial schedules are "
                                 "not allowed here"));
      } else if (std::abs(mcv.return_time - clock) > eps) {
        // An aborted tour ends where it stopped: return_time is the last
        // completed sojourn's finish (0 if it never reached a stop).
        violations.push_back(fmt("wrong abort time", k,
                                 mcv.sojourns.size(),
                                 "return_time of an aborted tour must equal "
                                 "the last completed finish"));
      }
    } else if (!mcv.sojourns.empty()) {
      double depot_leg = problem.travel_depot(mcv.sojourns.back().location);
      if (options.faults) {
        // The depot-return leg's index is the tour length, which for a
        // completed tour equals the number of sojourns.
        depot_leg *= options.faults->travel_mult(k, mcv.sojourns.size());
      }
      const double expected_return = clock + depot_leg;
      if (std::abs(mcv.return_time - expected_return) > eps) {
        violations.push_back(fmt("wrong return time", k,
                                 mcv.sojourns.size() - 1, ""));
      }
    }
  }

  // --- MCV energy budget (only for executions under an enabled budget).
  // Re-derived from the raw sojourn records with the executor's draw
  // model: arrival-leg meters + radiated energy per sojourn, plus the
  // depot-return leg for tours that made it home. Two checks per MCV:
  // the round must fit the battery, and the executor's own account
  // (energy_spent_j) must agree with the recomputation.
  if (options.faults && options.faults->budget.enabled()) {
    const energy::McvBudgetSpec& budget = options.faults->budget;
    const double tol_j = 1e-6 * std::max(1.0, budget.capacity_j);
    for (std::uint32_t k = 0; k < schedule.mcvs.size(); ++k) {
      const auto& mcv = schedule.mcvs[k];
      if (mcv.abort_cause != BreakdownCause::kNone && !mcv.aborted) {
        violations.push_back(fmt("phantom breakdown cause", k, 0,
                                 "abort_cause set on a completed tour"));
      }
      double spent = 0.0;
      geom::Point prev =
          k < schedule.starts.size() ? schedule.starts[k] : problem.depot();
      for (const Sojourn& s : mcv.sojourns) {
        if (s.location >= problem.size()) continue;  // reported above
        spent += budget.travel_cost_j(
            geom::distance(prev, problem.position(s.location)));
        spent +=
            budget.transfer_cost_j(s.duration() * problem.charging_rate_w());
        prev = problem.position(s.location);
      }
      if (!mcv.aborted && !mcv.sojourns.empty()) {
        spent += budget.travel_cost_j(geom::distance(prev, problem.depot()));
      }
      if (spent > budget.capacity_j + tol_j) {
        violations.push_back(fmt("energy budget exceeded", k,
                                 mcv.sojourns.size(),
                                 "tour draws more than the MCV battery"));
      }
      if (std::abs(spent - mcv.energy_spent_j) > tol_j) {
        violations.push_back(fmt("energy accounting mismatch", k,
                                 mcv.sojourns.size(),
                                 "reported energy_spent_j disagrees with "
                                 "the recomputed draw"));
      }
    }
  }

  // --- Coverage. ---
  if (options.require_full_coverage) {
    for (std::uint32_t u = 0; u < problem.size(); ++u) {
      if (charged_by[u] == -1) {
        violations.push_back("uncovered sensor " + std::to_string(u));
      }
    }
  }

  // --- No simultaneous charging of a shared sensor (multi-node only). ---
  if (schedule.mode == ChargeMode::kMultiNode) {
    struct Interval {
      std::uint32_t mcv;
      std::uint32_t location;
      double start, finish;
    };
    std::vector<Interval> intervals;
    for (std::uint32_t k = 0; k < schedule.mcvs.size(); ++k) {
      for (const auto& s : schedule.mcvs[k].sojourns) {
        if (s.finish > s.start) {
          intervals.push_back({k, s.location, s.start, s.finish});
        }
      }
    }
    for (std::size_t a = 0; a < intervals.size(); ++a) {
      for (std::size_t b = a + 1; b < intervals.size(); ++b) {
        const auto& x = intervals[a];
        const auto& y = intervals[b];
        if (x.mcv == y.mcv) continue;
        const bool time_overlap =
            x.start < y.finish - eps && y.start < x.finish - eps;
        if (!time_overlap) continue;
        if (problem.overlapping(x.location, y.location)) {
          std::ostringstream os;
          os << "simultaneous charging conflict: mcv " << x.mcv << " at "
             << x.location << " [" << x.start << ", " << x.finish
             << ") overlaps mcv " << y.mcv << " at " << y.location << " ["
             << y.start << ", " << y.finish << ")";
          violations.push_back(os.str());
        }
      }
    }
  }

  return violations;
}

}  // namespace mcharge::sched
