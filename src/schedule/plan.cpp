#include "schedule/plan.h"

#include <algorithm>

namespace mcharge::sched {

std::size_t ChargingPlan::total_stops() const {
  std::size_t total = 0;
  for (const auto& tour : tours) total += tour.size();
  return total;
}

geom::Point ChargingPlan::start_of(std::size_t k, geom::Point depot) const {
  if (starts.empty()) return depot;
  return starts[k];
}

double ChargingSchedule::longest_delay() const {
  double worst = 0.0;
  for (const auto& mcv : mcvs) worst = std::max(worst, mcv.return_time);
  return worst;
}

double ChargingSchedule::total_wait() const {
  double total = 0.0;
  for (const auto& mcv : mcvs) {
    for (const auto& s : mcv.sojourns) total += s.wait();
  }
  return total;
}

double ChargingSchedule::total_travel(
    const model::ChargingProblem& problem) const {
  double total = 0.0;
  for (std::size_t k = 0; k < mcvs.size(); ++k) {
    const auto& mcv = mcvs[k];
    if (mcv.sojourns.empty()) continue;
    const geom::Point start =
        k < starts.size() ? starts[k] : problem.depot();
    total += geom::distance(start,
                            problem.position(mcv.sojourns.front().location)) /
             problem.speed();
    for (std::size_t i = 0; i + 1 < mcv.sojourns.size(); ++i) {
      total += problem.travel(mcv.sojourns[i].location,
                              mcv.sojourns[i + 1].location);
    }
    total += problem.travel_depot(mcv.sojourns.back().location);
  }
  return total;
}

std::size_t ChargingSchedule::num_stops() const {
  std::size_t total = 0;
  for (const auto& mcv : mcvs) total += mcv.sojourns.size();
  return total;
}

bool ChargingSchedule::partial() const {
  return std::any_of(mcvs.begin(), mcvs.end(),
                     [](const McvSchedule& m) { return m.aborted; });
}

std::size_t ChargingSchedule::num_aborted() const {
  std::size_t total = 0;
  for (const auto& mcv : mcvs) total += mcv.aborted ? 1 : 0;
  return total;
}

bool ChargingSchedule::all_charged() const {
  return std::all_of(charged_at.begin(), charged_at.end(),
                     [](double t) { return t != kNeverCharged; });
}

std::vector<ChargingSchedule::EnergyUse> ChargingSchedule::energy_use(
    const model::ChargingProblem& problem, double move_cost_j_per_m) const {
  std::vector<EnergyUse> use(mcvs.size());
  for (std::size_t k = 0; k < mcvs.size(); ++k) {
    const auto& mcv = mcvs[k];
    double meters = 0.0;
    if (!mcv.sojourns.empty()) {
      const geom::Point start =
          k < starts.size() ? starts[k] : problem.depot();
      meters += geom::distance(start,
                               problem.position(mcv.sojourns.front().location));
      for (std::size_t i = 0; i + 1 < mcv.sojourns.size(); ++i) {
        meters += geom::distance(
            problem.position(mcv.sojourns[i].location),
            problem.position(mcv.sojourns[i + 1].location));
      }
      meters += geom::distance(
          problem.position(mcv.sojourns.back().location), problem.depot());
    }
    use[k].locomotion_j = move_cost_j_per_m * meters;
    for (const auto& s : mcv.sojourns) {
      use[k].delivered_j += s.duration() * problem.charging_rate_w();
    }
  }
  return use;
}

}  // namespace mcharge::sched
