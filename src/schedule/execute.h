// Plan execution: turns a ChargingPlan into a timed ChargingSchedule.
//
// Multi-node mode implements the paper's semantics:
//  * an MCV parked at v charges every not-yet-charged sensor in N_c+(v);
//    the sojourn's duration is tau'(v) = max t_u over that set (Eq. (3)) —
//    zero if everything in range was already charged;
//  * the no-overlap constraint is enforced: if starting to charge would
//    energize a sensor inside another MCV's active charging disk, the MCV
//    waits at the location until the conflicting sojourn finishes. Events
//    are processed in global time order (ties by MCV id), so the result is
//    deterministic and pairwise conflict-free by construction. A plan from
//    algorithm Appro incurs (near-)zero waiting; the executor makes any
//    plan feasible and measurable.
//
// One-to-one mode implements the baselines' scheme: the MCV charges only
// the sensor it parks at, for t_v seconds (skipping sensors someone already
// charged), with no cross-charger interference by assumption.
#pragma once

#include "model/charging_problem.h"
#include "schedule/plan.h"

namespace mcharge::sched {

/// Executes `plan` against `problem`. The plan may reference each sensor
/// location at most once across all tours (asserted).
ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan);

}  // namespace mcharge::sched
