// Plan execution: turns a ChargingPlan into a timed ChargingSchedule.
//
// Multi-node mode implements the paper's semantics:
//  * an MCV parked at v charges every not-yet-charged sensor in N_c+(v);
//    the sojourn's duration is tau'(v) = max t_u over that set (Eq. (3)) —
//    zero if everything in range was already charged;
//  * the no-overlap constraint is enforced: if starting to charge would
//    energize a sensor inside another MCV's active charging disk, the MCV
//    waits at the location until the conflicting sojourn finishes. Events
//    are processed in global time order (ties by MCV id), so the result is
//    deterministic and pairwise conflict-free by construction. A plan from
//    algorithm Appro incurs (near-)zero waiting; the executor makes any
//    plan feasible and measurable.
//
// One-to-one mode implements the baselines' scheme: the MCV charges only
// the sensor it parks at, for t_v seconds (skipping sensors someone already
// charged), with no cross-charger interference by assumption.
//
// Failure-aware execution: an ExecutionFaults bundle injects per-MCV
// mid-tour breakdowns (the tour truncates; remaining stops are recorded as
// skipped and their sensors stay uncharged) and multiplicative travel /
// charging-time jitter. With a default-constructed bundle the executor is
// bit-identical to the fault-free path — no multiplier is ever applied.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "energy/mcv_battery.h"
#include "model/charging_problem.h"
#include "schedule/plan.h"

namespace mcharge::sched {

/// Deterministic per-round fault inputs for one plan execution. The
/// multiplier callbacks MUST be pure functions of their arguments (the
/// repo-wide determinism contract): sim::FaultModel derives them from
/// splitmix64 streams keyed by (seed, round, entity).
struct ExecutionFaults {
  static constexpr std::uint32_t kNoBreakdown =
      std::numeric_limits<std::uint32_t>::max();

  /// Per MCV: number of sojourns completed before the vehicle fails
  /// (kNoBreakdown = the tour completes). A value of 0 means the MCV
  /// breaks down at dispatch, before reaching its first stop. Empty =
  /// no breakdowns anywhere.
  std::vector<std::uint32_t> breakdown_after;
  /// Multiplicative travel-time factor for (mcv, leg). Leg i is the leg
  /// arriving at sojourn i (leg 0 leaves the start position); leg ==
  /// tour length is the depot-return leg. Null = 1 everywhere.
  std::function<double(std::uint32_t mcv, std::size_t leg)> travel_multiplier;
  /// Multiplicative charging-duration factor for a sojourn parked at
  /// `location`. Null = 1 everywhere.
  std::function<double(std::uint32_t location)> charge_multiplier;
  /// Per-MCV energy budget (energy/mcv_battery.h). Disabled (the default)
  /// = unlimited energy and zero accounting overhead. Enabled: every MCV
  /// starts the round with a full battery, each sojourn draws its arrival
  /// leg's locomotion energy plus the sojourn's transfer energy as one
  /// all-or-nothing debit, and the depot-return leg draws locomotion
  /// energy; an unaffordable debit aborts the tour *deterministically*
  /// with BreakdownCause::kEnergyExhausted — the same partial-schedule /
  /// recovery machinery as the coin-flip breakdowns. Unlike jitter, the
  /// draws depend on driven meters, not travel time, so travel jitter
  /// never changes the energy outcome.
  energy::McvBudgetSpec budget;

  std::uint32_t breakdown_of(std::uint32_t mcv) const {
    return mcv < breakdown_after.size() ? breakdown_after[mcv] : kNoBreakdown;
  }
  bool has_breakdown() const {
    for (std::uint32_t b : breakdown_after) {
      if (b != kNoBreakdown) return true;
    }
    return false;
  }
  double travel_mult(std::uint32_t mcv, std::size_t leg) const {
    return travel_multiplier ? travel_multiplier(mcv, leg) : 1.0;
  }
  double charge_mult(std::uint32_t location) const {
    return charge_multiplier ? charge_multiplier(location) : 1.0;
  }
  /// True when this bundle can change anything about the execution.
  bool any() const {
    return has_breakdown() || travel_multiplier != nullptr ||
           charge_multiplier != nullptr || budget.enabled();
  }
};

/// Mid-round resume context: the frozen, already-executed prefix of a
/// round whose remaining stops are being re-executed as suffix tours
/// (graft recovery, core/replan.h). The executor treats the prefix as
/// history — it never re-runs it — but seeds all cross-tour state from it
/// so the merged (prefix + suffix) schedule is exactly what a single
/// uninterrupted execution of the merged tours would have produced.
struct ResumeState {
  /// A prefix sojourn that may still be charging when the suffix starts;
  /// suffix sojourns must wait out conflicts against these exactly like
  /// against each other.
  struct Busy {
    std::uint32_t mcv;
    std::uint32_t location;
    double start;
    double finish;
  };

  /// Per MCV: the instant it departs toward its first suffix stop —
  /// normally its prefix's last finish, possibly held later (e.g. until
  /// the base station could have issued the new instruction).
  std::vector<double> depart_at;
  /// Per MCV: number of already-executed sojourns. Suffix sojourn i uses
  /// travel-fault leg index leg_offset[k] + i (and the depot-return leg
  /// leg_offset[k] + suffix length), so fault draws line up with the
  /// merged tour's leg indices.
  std::vector<std::uint32_t> leg_offset;
  /// Per sensor: 1 if the executed prefix already charged it.
  std::vector<char> charged;
  /// Prefix sojourns with positive duration (conflict-detection seed).
  std::vector<Busy> busy;
  /// Per MCV: joules left in the battery after the executed prefix
  /// (seed with prefix_energy_left()). Empty = full battery / budget
  /// disabled. The suffix execution continues draining from here, so the
  /// merged schedule's energy account is bit-identical to one
  /// uninterrupted execution of the merged tours.
  std::vector<double> energy_left;
};

/// Executes `plan` against `problem`. The plan may reference each sensor
/// location at most once across all tours (asserted).
ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan);

/// Failure-aware overload: breakdowns truncate tours (the schedule is then
/// partial()), jitter rescales travel legs and charging durations. With an
/// empty `faults` this is exactly execute_plan(problem, plan).
ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan,
                              const ExecutionFaults& faults);

/// Resume overload (multi-node only): executes just the suffix tours in
/// `plan` on top of the partially executed round described by `resume`.
/// plan.starts must hold each MCV's current field position (its prefix's
/// last stop). Returns a schedule containing ONLY the suffix sojourns;
/// the caller merges it with the frozen prefix. MCVs with an empty suffix
/// tour are left untouched (return_time = depart_at).
ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan,
                              const ExecutionFaults& faults,
                              const ResumeState& resume);

/// Replays the energy draws of the first `prefix_len[k]` sojourns of each
/// MCV in `schedule` under `spec` and returns the joules left per MCV —
/// the ResumeState::energy_left seed for a graft resume. The replay
/// applies exactly the executor's debit expression (arrival-leg meters +
/// sojourn transfer, one subtraction per sojourn) in tour order, so the
/// resumed battery holds bit-identical joules to a live execution.
std::vector<double> prefix_energy_left(
    const model::ChargingProblem& problem, const ChargingSchedule& schedule,
    const std::vector<std::size_t>& prefix_len,
    const energy::McvBudgetSpec& spec);

}  // namespace mcharge::sched
