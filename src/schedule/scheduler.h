// The Scheduler interface implemented by algorithm Appro and the baselines.
#pragma once

#include <memory>
#include <string>

#include "model/charging_problem.h"
#include "schedule/plan.h"

namespace mcharge::sched {

/// A charging-tour scheduling algorithm: maps one charging round's problem
/// (the frozen set V_s with deficits) to a plan for the K MCVs.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable algorithm name (matches the paper's legend).
  virtual std::string name() const = 0;

  /// Computes a plan covering every sensor of the problem.
  virtual ChargingPlan plan(const model::ChargingProblem& problem) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

}  // namespace mcharge::sched
