// The Scheduler interface implemented by algorithm Appro and the baselines.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "model/charging_problem.h"
#include "schedule/plan.h"

namespace mcharge::sched {

/// A charging-tour scheduling algorithm: maps one charging round's problem
/// (the frozen set V_s with deficits) to a plan for the K MCVs.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable algorithm name (matches the paper's legend).
  virtual std::string name() const = 0;

  /// Computes a plan covering every sensor of the problem.
  virtual ChargingPlan plan(const model::ChargingProblem& problem) const = 0;

  /// Computes the same plan using up to `jobs` worker threads for the
  /// scheduler's internal parallel sections. jobs == 0 leaves the
  /// scheduler's own configuration in effect (equivalent to plan()).
  /// The thread count must never change the plan — only wall-clock time
  /// (the repo-wide determinism contract); the default implementation
  /// ignores the hint and plans serially.
  virtual ChargingPlan plan_with_jobs(const model::ChargingProblem& problem,
                                      std::size_t jobs) const {
    (void)jobs;
    return plan(problem);
  }
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

}  // namespace mcharge::sched
