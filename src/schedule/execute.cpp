#include "schedule/execute.h"

#include <algorithm>
#include <queue>

#include "obs/obs.h"
#include "util/assert.h"

namespace mcharge::sched {

namespace {

struct Event {
  double time;
  std::uint32_t mcv;
  std::size_t tour_pos;  ///< index of the location being visited

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return mcv > other.mcv;
  }
};

/// A committed charging interval used for conflict detection.
struct ActiveSojourn {
  std::uint32_t mcv;
  std::uint32_t location;
  double start;
  double finish;
};

/// Travel time from MCV k's start position to location `loc`. `leg` is the
/// fault index of this leg: 0 for a fresh execution, the resume leg offset
/// when the "start" position is really a mid-tour field position.
double start_leg(const model::ChargingProblem& problem,
                 const ChargingPlan& plan, const ExecutionFaults& faults,
                 std::uint32_t mcv, std::uint32_t loc, std::size_t leg) {
  const geom::Point start = plan.start_of(mcv, problem.depot());
  double t = geom::distance(start, problem.position(loc)) / problem.speed();
  if (faults.travel_multiplier) t *= faults.travel_multiplier(mcv, leg);
  return t;
}

/// Travel time of the leg arriving at sojourn `leg` of MCV k's tour.
double leg_time(const model::ChargingProblem& problem,
                const ExecutionFaults& faults, std::uint32_t mcv,
                std::size_t leg, std::uint32_t from, std::uint32_t to) {
  double t = problem.travel(from, to);
  if (faults.travel_multiplier) t *= faults.travel_multiplier(mcv, leg);
  return t;
}

/// Depot-return leg (leg index = tour length).
double return_leg(const model::ChargingProblem& problem,
                  const ExecutionFaults& faults, std::uint32_t mcv,
                  std::size_t tour_len, std::uint32_t from) {
  double t = problem.travel_depot(from);
  if (faults.travel_multiplier) {
    t *= faults.travel_multiplier(mcv, tour_len);
  }
  return t;
}

void resolve_starts(const model::ChargingProblem& problem,
                    const ChargingPlan& plan, ChargingSchedule* schedule) {
  schedule->starts.clear();
  for (std::size_t k = 0; k < plan.tours.size(); ++k) {
    schedule->starts.push_back(plan.start_of(k, problem.depot()));
  }
}

/// Marks MCV `k` broken before performing sojourn `pos`: the tour ends at
/// the last completed sojourn's finish (or the start instant for pos = 0)
/// and every remaining planned stop is recorded as skipped.
void abort_tour(const ChargingPlan& plan, std::uint32_t k, std::size_t pos,
                McvSchedule* mcv,
                BreakdownCause cause = BreakdownCause::kFault) {
  mcv->aborted = true;
  mcv->abort_cause = cause;
  mcv->return_time =
      mcv->sojourns.empty() ? 0.0 : mcv->sojourns.back().finish;
  const auto& tour = plan.tours[k];
  mcv->skipped.assign(tour.begin() + static_cast<std::ptrdiff_t>(pos),
                      tour.end());
}

/// Battery debit of committing a sojourn: the arrival leg's locomotion
/// energy plus the sojourn's transfer energy, as one all-or-nothing sum.
/// `duration` must be the recorded finish - start (so a resume replay of
/// the sojourn record reproduces the exact same bits).
double sojourn_energy_j(const model::ChargingProblem& problem,
                        const energy::McvBudgetSpec& spec, geom::Point from,
                        std::uint32_t loc, double duration) {
  return spec.travel_cost_j(geom::distance(from, problem.position(loc))) +
         spec.transfer_cost_j(duration * problem.charging_rate_w());
}

/// Per-MCV batteries for one execution, seeded from a resume prefix when
/// one is given. Empty when the budget is disabled — the caller must then
/// skip every energy branch so the unbudgeted path stays untouched.
std::vector<energy::McvBattery> make_batteries(const ChargingPlan& plan,
                                               const ExecutionFaults& faults,
                                               const ResumeState& resume) {
  std::vector<energy::McvBattery> batteries;
  if (!faults.budget.enabled()) return batteries;
  batteries.reserve(plan.tours.size());
  for (std::size_t k = 0; k < plan.tours.size(); ++k) {
    batteries.emplace_back(faults.budget);
    if (k < resume.energy_left.size()) {
      batteries.back().set_level(resume.energy_left[k]);
    }
  }
  return batteries;
}

ChargingSchedule execute_multinode(const model::ChargingProblem& problem,
                                   const ChargingPlan& plan,
                                   const ExecutionFaults& faults,
                                   const ResumeState& resume) {
  OBS_SPAN("exec.multinode");
  ChargingSchedule schedule;
  schedule.mode = ChargeMode::kMultiNode;
  schedule.mcvs.resize(plan.tours.size());
  schedule.charged_at.assign(problem.size(), kNeverCharged);
  resolve_starts(problem, plan, &schedule);

  // A default-constructed ResumeState is a fresh execution: departure 0,
  // leg offset 0, nothing charged, nothing busy.
  const auto depart = [&resume](std::uint32_t k) {
    return k < resume.depart_at.size() ? resume.depart_at[k] : 0.0;
  };
  const auto offset = [&resume](std::uint32_t k) {
    return k < resume.leg_offset.size()
               ? static_cast<std::size_t>(resume.leg_offset[k])
               : std::size_t{0};
  };

  // `committed` marks sensors that are (or will be) fully charged by an
  // already-committed sojourn, so later sojourns exclude them from tau'.
  std::vector<char> committed(problem.size(), 0);
  for (std::size_t u = 0; u < resume.charged.size(); ++u) {
    if (resume.charged[u]) committed[u] = 1;
  }
  std::vector<ActiveSojourn> log;  // all committed sojourns with duration > 0
  for (const auto& b : resume.busy) {
    log.push_back({b.mcv, b.location, b.start, b.finish});
  }

  // Energy budget: one battery per MCV, full (or resume-seeded) at the
  // round start. Empty vector when the budget is disabled; every energy
  // branch below is gated on budget_on so the unbudgeted execution is
  // exactly the pre-budget code path.
  const bool budget_on = faults.budget.enabled();
  std::vector<energy::McvBattery> battery =
      make_batteries(plan, faults, resume);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  for (std::uint32_t k = 0; k < plan.tours.size(); ++k) {
    if (plan.tours[k].empty()) {
      schedule.mcvs[k].return_time = depart(k);
    } else if (faults.breakdown_of(k) == 0) {
      // Broke down at dispatch: never leaves the depot area.
      abort_tour(plan, k, 0, &schedule.mcvs[k]);
    } else {
      events.push({depart(k) + start_leg(problem, plan, faults, k,
                                         plan.tours[k][0], offset(k)),
                   k, 0});
    }
  }

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    const auto& tour = plan.tours[ev.mcv];
    const std::uint32_t loc = tour[ev.tour_pos];

    // Sensors this sojourn would charge.
    std::vector<std::uint32_t> to_charge;
    for (std::uint32_t u : problem.coverage(loc)) {
      if (!committed[u]) to_charge.push_back(u);
    }
    double duration = 0.0;
    for (std::uint32_t u : to_charge) {
      duration = std::max(duration, problem.charge_seconds(u));
    }
    if (faults.charge_multiplier) duration *= faults.charge_multiplier(loc);

    double start = ev.time;
    if (duration > 0.0) {
      // Wait out any committed conflicting interval still active at/after
      // `start`: another MCV whose charging disk shares a sensor with ours.
      double wait_until = start;
      for (const auto& active : log) {
        if (active.mcv == ev.mcv) continue;
        if (active.finish <= start) continue;
        if (problem.overlapping(active.location, loc)) {
          wait_until = std::max(wait_until, active.finish);
        }
      }
      if (wait_until > start) {
        // Re-queue at the conflict's end: conditions may change by then (a
        // third MCV may commit another conflicting interval meanwhile).
        // True arrival times are rebuilt from travel legs after the loop.
        events.push({wait_until, ev.mcv, ev.tour_pos});
        continue;
      }
    }

    // Energy gate: committing this sojourn costs the arrival leg's
    // locomotion energy plus the transfer energy, debited together so an
    // exhausted MCV never goes energy-negative mid-action. An unaffordable
    // debit ends the tour here — the vehicle would run dry en route — as
    // a deterministic, cause-tagged breakdown feeding the same recovery
    // machinery as the coin-flip ones. Checked only after the conflict
    // wait resolved: waiting draws nothing, so a re-queued event must not
    // debit twice.
    if (budget_on) {
      const geom::Point from =
          ev.tour_pos == 0 ? plan.start_of(ev.mcv, problem.depot())
                           : problem.position(tour[ev.tour_pos - 1]);
      const double need = sojourn_energy_j(problem, faults.budget, from, loc,
                                           (start + duration) - start);
      if (!battery[ev.mcv].draw(need)) {
        OBS_COUNT("exec.energy_aborts", 1);
        abort_tour(plan, ev.mcv, ev.tour_pos, &schedule.mcvs[ev.mcv],
                   BreakdownCause::kEnergyExhausted);
        continue;
      }
    }

    // Commit the sojourn.
    Sojourn sojourn;
    sojourn.location = loc;
    sojourn.arrival = ev.time;  // refined below via arrival tracking
    sojourn.start = start;
    sojourn.finish = start + duration;
    sojourn.charged = to_charge;
    for (std::uint32_t u : to_charge) {
      committed[u] = 1;
      schedule.charged_at[u] = sojourn.finish;
    }
    if (duration > 0.0) {
      log.push_back({ev.mcv, loc, sojourn.start, sojourn.finish});
    }
    schedule.mcvs[ev.mcv].sojourns.push_back(std::move(sojourn));

    // Breakdown: the vehicle fails while departing this stop; remaining
    // planned stops are never visited.
    if (ev.tour_pos + 1 >= faults.breakdown_of(ev.mcv)) {
      abort_tour(plan, ev.mcv, ev.tour_pos + 1, &schedule.mcvs[ev.mcv]);
      continue;
    }

    // Next leg.
    if (ev.tour_pos + 1 < tour.size()) {
      const double travel =
          leg_time(problem, faults, ev.mcv, offset(ev.mcv) + ev.tour_pos + 1,
                   loc, tour[ev.tour_pos + 1]);
      events.push({start + duration + travel, ev.mcv, ev.tour_pos + 1});
    } else {
      if (budget_on &&
          !battery[ev.mcv].draw(faults.budget.travel_cost_j(
              geom::distance(problem.position(loc), problem.depot())))) {
        // Not enough energy for the depot-return leg: the MCV strands in
        // the field with its tour complete (skipped stays empty).
        OBS_COUNT("exec.energy_aborts", 1);
        abort_tour(plan, ev.mcv, tour.size(), &schedule.mcvs[ev.mcv],
                   BreakdownCause::kEnergyExhausted);
        continue;
      }
      schedule.mcvs[ev.mcv].return_time =
          start + duration +
          return_leg(problem, faults, ev.mcv, offset(ev.mcv) + tour.size(),
                     loc);
    }
  }

  if (budget_on) {
    for (std::size_t k = 0; k < schedule.mcvs.size(); ++k) {
      schedule.mcvs[k].energy_spent_j = battery[k].spent();
    }
  }

  // Fix up arrival times: an event re-queued by waiting loses its original
  // arrival; recompute arrivals from travel legs so wait() is meaningful.
  for (std::uint32_t k = 0; k < schedule.mcvs.size(); ++k) {
    auto& mcv = schedule.mcvs[k];
    double clock = depart(k);
    std::uint32_t prev = 0;
    std::size_t leg = offset(k);
    bool first = true;
    for (auto& s : mcv.sojourns) {
      clock += first ? start_leg(problem, plan, faults, k, s.location, leg)
                     : leg_time(problem, faults, k, leg, prev, s.location);
      s.arrival = clock;
      MCHARGE_DASSERT(s.start >= s.arrival - 1e-9,
                      "sojourn starts before arrival");
      clock = s.finish;
      prev = s.location;
      ++leg;
      first = false;
    }
  }
  return schedule;
}

ChargingSchedule execute_one_to_one(const model::ChargingProblem& problem,
                                    const ChargingPlan& plan,
                                    const ExecutionFaults& faults) {
  OBS_SPAN("exec.one_to_one");
  ChargingSchedule schedule;
  schedule.mode = ChargeMode::kOneToOne;
  schedule.mcvs.resize(plan.tours.size());
  schedule.charged_at.assign(problem.size(), kNeverCharged);
  resolve_starts(problem, plan, &schedule);

  // Process in global time order so that if two MCVs target the same
  // sensor, the earlier one charges it and the later one skips (zero
  // duration stop), mirroring the baselines' tie handling.
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  for (std::uint32_t k = 0; k < plan.tours.size(); ++k) {
    if (plan.tours[k].empty()) continue;
    if (faults.breakdown_of(k) == 0) {
      abort_tour(plan, k, 0, &schedule.mcvs[k]);
    } else {
      events.push(
          {start_leg(problem, plan, faults, k, plan.tours[k][0], 0), k, 0});
    }
  }
  const bool budget_on = faults.budget.enabled();
  std::vector<energy::McvBattery> battery =
      make_batteries(plan, faults, ResumeState{});

  std::vector<char> committed(problem.size(), 0);
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const auto& tour = plan.tours[ev.mcv];
    const std::uint32_t loc = tour[ev.tour_pos];

    const bool fresh = !committed[loc];
    double duration = 0.0;
    if (fresh) {
      duration = problem.charge_seconds(loc);
      if (faults.charge_multiplier) {
        duration *= faults.charge_multiplier(loc);
      }
    }

    // Energy gate — same all-or-nothing debit as the multi-node executor.
    if (budget_on) {
      const geom::Point from =
          ev.tour_pos == 0 ? plan.start_of(ev.mcv, problem.depot())
                           : problem.position(tour[ev.tour_pos - 1]);
      const double need = sojourn_energy_j(problem, faults.budget, from, loc,
                                           (ev.time + duration) - ev.time);
      if (!battery[ev.mcv].draw(need)) {
        OBS_COUNT("exec.energy_aborts", 1);
        abort_tour(plan, ev.mcv, ev.tour_pos, &schedule.mcvs[ev.mcv],
                   BreakdownCause::kEnergyExhausted);
        continue;
      }
    }

    Sojourn sojourn;
    sojourn.location = loc;
    sojourn.arrival = ev.time;
    sojourn.start = ev.time;
    if (fresh) {
      committed[loc] = 1;
      sojourn.charged = {loc};
      schedule.charged_at[loc] = ev.time + duration;
    }
    sojourn.finish = ev.time + duration;
    schedule.mcvs[ev.mcv].sojourns.push_back(std::move(sojourn));

    if (ev.tour_pos + 1 >= faults.breakdown_of(ev.mcv)) {
      abort_tour(plan, ev.mcv, ev.tour_pos + 1, &schedule.mcvs[ev.mcv]);
      continue;
    }

    if (ev.tour_pos + 1 < tour.size()) {
      const double travel = leg_time(problem, faults, ev.mcv, ev.tour_pos + 1,
                                     loc, tour[ev.tour_pos + 1]);
      events.push({ev.time + duration + travel, ev.mcv, ev.tour_pos + 1});
    } else {
      if (budget_on &&
          !battery[ev.mcv].draw(faults.budget.travel_cost_j(
              geom::distance(problem.position(loc), problem.depot())))) {
        OBS_COUNT("exec.energy_aborts", 1);
        abort_tour(plan, ev.mcv, tour.size(), &schedule.mcvs[ev.mcv],
                   BreakdownCause::kEnergyExhausted);
        continue;
      }
      schedule.mcvs[ev.mcv].return_time =
          ev.time + duration +
          return_leg(problem, faults, ev.mcv, tour.size(), loc);
    }
  }
  if (budget_on) {
    for (std::size_t k = 0; k < schedule.mcvs.size(); ++k) {
      schedule.mcvs[k].energy_spent_j = battery[k].spent();
    }
  }
  return schedule;
}

}  // namespace

ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan) {
  return execute_plan(problem, plan, ExecutionFaults{});
}

ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan,
                              const ExecutionFaults& faults) {
  MCHARGE_ASSERT(plan.starts.empty() || plan.starts.size() == plan.tours.size(),
                 "plan.starts must be empty or one per tour");
  MCHARGE_ASSERT(faults.breakdown_after.empty() ||
                     faults.breakdown_after.size() == plan.tours.size(),
                 "breakdown_after must be empty or one entry per tour");
  // Plans must not reuse a location across or within tours (node-disjoint
  // closed tours per Definition 1).
  std::vector<char> used(problem.size(), 0);
  for (const auto& tour : plan.tours) {
    for (std::uint32_t loc : tour) {
      MCHARGE_ASSERT(loc < problem.size(), "plan references unknown location");
      MCHARGE_ASSERT(!used[loc], "plans must visit each location at most once");
      used[loc] = 1;
    }
  }
  return plan.mode == ChargeMode::kMultiNode
             ? execute_multinode(problem, plan, faults, ResumeState{})
             : execute_one_to_one(problem, plan, faults);
}

ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan,
                              const ExecutionFaults& faults,
                              const ResumeState& resume) {
  MCHARGE_ASSERT(plan.mode == ChargeMode::kMultiNode,
                 "resume execution is defined for multi-node plans only");
  MCHARGE_ASSERT(plan.starts.size() == plan.tours.size(),
                 "resume plans must carry every MCV's current position");
  MCHARGE_ASSERT(faults.breakdown_after.empty() ||
                     faults.breakdown_after.size() == plan.tours.size(),
                 "breakdown_after must be empty or one entry per tour");
  std::vector<char> used(problem.size(), 0);
  for (const auto& tour : plan.tours) {
    for (std::uint32_t loc : tour) {
      MCHARGE_ASSERT(loc < problem.size(), "plan references unknown location");
      MCHARGE_ASSERT(!used[loc], "plans must visit each location at most once");
      used[loc] = 1;
    }
  }
  return execute_multinode(problem, plan, faults, resume);
}

std::vector<double> prefix_energy_left(
    const model::ChargingProblem& problem, const ChargingSchedule& schedule,
    const std::vector<std::size_t>& prefix_len,
    const energy::McvBudgetSpec& spec) {
  MCHARGE_ASSERT(prefix_len.size() == schedule.mcvs.size(),
                 "one prefix length per MCV");
  std::vector<double> left(schedule.mcvs.size(), spec.capacity_j);
  if (!spec.enabled()) return left;
  for (std::size_t k = 0; k < schedule.mcvs.size(); ++k) {
    const auto& mcv = schedule.mcvs[k];
    energy::McvBattery battery(spec);
    geom::Point from =
        k < schedule.starts.size() ? schedule.starts[k] : problem.depot();
    const std::size_t p = std::min(prefix_len[k], mcv.sojourns.size());
    for (std::size_t i = 0; i < p; ++i) {
      const Sojourn& s = mcv.sojourns[i];
      const bool ok = battery.draw(sojourn_energy_j(
          problem, spec, from, s.location, s.finish - s.start));
      MCHARGE_ASSERT(ok, "an executed prefix sojourn must have been paid for");
      from = problem.position(s.location);
    }
    left[k] = battery.level();
  }
  return left;
}

}  // namespace mcharge::sched
