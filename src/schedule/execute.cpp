#include "schedule/execute.h"

#include <algorithm>
#include <queue>

#include "obs/obs.h"
#include "util/assert.h"

namespace mcharge::sched {

namespace {

struct Event {
  double time;
  std::uint32_t mcv;
  std::size_t tour_pos;  ///< index of the location being visited

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return mcv > other.mcv;
  }
};

/// A committed charging interval used for conflict detection.
struct ActiveSojourn {
  std::uint32_t mcv;
  std::uint32_t location;
  double start;
  double finish;
};

/// Travel time from MCV k's start position to location `loc`. `leg` is the
/// fault index of this leg: 0 for a fresh execution, the resume leg offset
/// when the "start" position is really a mid-tour field position.
double start_leg(const model::ChargingProblem& problem,
                 const ChargingPlan& plan, const ExecutionFaults& faults,
                 std::uint32_t mcv, std::uint32_t loc, std::size_t leg) {
  const geom::Point start = plan.start_of(mcv, problem.depot());
  double t = geom::distance(start, problem.position(loc)) / problem.speed();
  if (faults.travel_multiplier) t *= faults.travel_multiplier(mcv, leg);
  return t;
}

/// Travel time of the leg arriving at sojourn `leg` of MCV k's tour.
double leg_time(const model::ChargingProblem& problem,
                const ExecutionFaults& faults, std::uint32_t mcv,
                std::size_t leg, std::uint32_t from, std::uint32_t to) {
  double t = problem.travel(from, to);
  if (faults.travel_multiplier) t *= faults.travel_multiplier(mcv, leg);
  return t;
}

/// Depot-return leg (leg index = tour length).
double return_leg(const model::ChargingProblem& problem,
                  const ExecutionFaults& faults, std::uint32_t mcv,
                  std::size_t tour_len, std::uint32_t from) {
  double t = problem.travel_depot(from);
  if (faults.travel_multiplier) {
    t *= faults.travel_multiplier(mcv, tour_len);
  }
  return t;
}

void resolve_starts(const model::ChargingProblem& problem,
                    const ChargingPlan& plan, ChargingSchedule* schedule) {
  schedule->starts.clear();
  for (std::size_t k = 0; k < plan.tours.size(); ++k) {
    schedule->starts.push_back(plan.start_of(k, problem.depot()));
  }
}

/// Marks MCV `k` broken before performing sojourn `pos`: the tour ends at
/// the last completed sojourn's finish (or the start instant for pos = 0)
/// and every remaining planned stop is recorded as skipped.
void abort_tour(const ChargingPlan& plan, std::uint32_t k, std::size_t pos,
                McvSchedule* mcv) {
  mcv->aborted = true;
  mcv->return_time =
      mcv->sojourns.empty() ? 0.0 : mcv->sojourns.back().finish;
  const auto& tour = plan.tours[k];
  mcv->skipped.assign(tour.begin() + static_cast<std::ptrdiff_t>(pos),
                      tour.end());
}

ChargingSchedule execute_multinode(const model::ChargingProblem& problem,
                                   const ChargingPlan& plan,
                                   const ExecutionFaults& faults,
                                   const ResumeState& resume) {
  OBS_SPAN("exec.multinode");
  ChargingSchedule schedule;
  schedule.mode = ChargeMode::kMultiNode;
  schedule.mcvs.resize(plan.tours.size());
  schedule.charged_at.assign(problem.size(), kNeverCharged);
  resolve_starts(problem, plan, &schedule);

  // A default-constructed ResumeState is a fresh execution: departure 0,
  // leg offset 0, nothing charged, nothing busy.
  const auto depart = [&resume](std::uint32_t k) {
    return k < resume.depart_at.size() ? resume.depart_at[k] : 0.0;
  };
  const auto offset = [&resume](std::uint32_t k) {
    return k < resume.leg_offset.size()
               ? static_cast<std::size_t>(resume.leg_offset[k])
               : std::size_t{0};
  };

  // `committed` marks sensors that are (or will be) fully charged by an
  // already-committed sojourn, so later sojourns exclude them from tau'.
  std::vector<char> committed(problem.size(), 0);
  for (std::size_t u = 0; u < resume.charged.size(); ++u) {
    if (resume.charged[u]) committed[u] = 1;
  }
  std::vector<ActiveSojourn> log;  // all committed sojourns with duration > 0
  for (const auto& b : resume.busy) {
    log.push_back({b.mcv, b.location, b.start, b.finish});
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  for (std::uint32_t k = 0; k < plan.tours.size(); ++k) {
    if (plan.tours[k].empty()) {
      schedule.mcvs[k].return_time = depart(k);
    } else if (faults.breakdown_of(k) == 0) {
      // Broke down at dispatch: never leaves the depot area.
      abort_tour(plan, k, 0, &schedule.mcvs[k]);
    } else {
      events.push({depart(k) + start_leg(problem, plan, faults, k,
                                         plan.tours[k][0], offset(k)),
                   k, 0});
    }
  }

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    const auto& tour = plan.tours[ev.mcv];
    const std::uint32_t loc = tour[ev.tour_pos];

    // Sensors this sojourn would charge.
    std::vector<std::uint32_t> to_charge;
    for (std::uint32_t u : problem.coverage(loc)) {
      if (!committed[u]) to_charge.push_back(u);
    }
    double duration = 0.0;
    for (std::uint32_t u : to_charge) {
      duration = std::max(duration, problem.charge_seconds(u));
    }
    if (faults.charge_multiplier) duration *= faults.charge_multiplier(loc);

    double start = ev.time;
    if (duration > 0.0) {
      // Wait out any committed conflicting interval still active at/after
      // `start`: another MCV whose charging disk shares a sensor with ours.
      double wait_until = start;
      for (const auto& active : log) {
        if (active.mcv == ev.mcv) continue;
        if (active.finish <= start) continue;
        if (problem.overlapping(active.location, loc)) {
          wait_until = std::max(wait_until, active.finish);
        }
      }
      if (wait_until > start) {
        // Re-queue at the conflict's end: conditions may change by then (a
        // third MCV may commit another conflicting interval meanwhile).
        // True arrival times are rebuilt from travel legs after the loop.
        events.push({wait_until, ev.mcv, ev.tour_pos});
        continue;
      }
    }

    // Commit the sojourn.
    Sojourn sojourn;
    sojourn.location = loc;
    sojourn.arrival = ev.time;  // refined below via arrival tracking
    sojourn.start = start;
    sojourn.finish = start + duration;
    sojourn.charged = to_charge;
    for (std::uint32_t u : to_charge) {
      committed[u] = 1;
      schedule.charged_at[u] = sojourn.finish;
    }
    if (duration > 0.0) {
      log.push_back({ev.mcv, loc, sojourn.start, sojourn.finish});
    }
    schedule.mcvs[ev.mcv].sojourns.push_back(std::move(sojourn));

    // Breakdown: the vehicle fails while departing this stop; remaining
    // planned stops are never visited.
    if (ev.tour_pos + 1 >= faults.breakdown_of(ev.mcv)) {
      abort_tour(plan, ev.mcv, ev.tour_pos + 1, &schedule.mcvs[ev.mcv]);
      continue;
    }

    // Next leg.
    if (ev.tour_pos + 1 < tour.size()) {
      const double travel =
          leg_time(problem, faults, ev.mcv, offset(ev.mcv) + ev.tour_pos + 1,
                   loc, tour[ev.tour_pos + 1]);
      events.push({start + duration + travel, ev.mcv, ev.tour_pos + 1});
    } else {
      schedule.mcvs[ev.mcv].return_time =
          start + duration +
          return_leg(problem, faults, ev.mcv, offset(ev.mcv) + tour.size(),
                     loc);
    }
  }

  // Fix up arrival times: an event re-queued by waiting loses its original
  // arrival; recompute arrivals from travel legs so wait() is meaningful.
  for (std::uint32_t k = 0; k < schedule.mcvs.size(); ++k) {
    auto& mcv = schedule.mcvs[k];
    double clock = depart(k);
    std::uint32_t prev = 0;
    std::size_t leg = offset(k);
    bool first = true;
    for (auto& s : mcv.sojourns) {
      clock += first ? start_leg(problem, plan, faults, k, s.location, leg)
                     : leg_time(problem, faults, k, leg, prev, s.location);
      s.arrival = clock;
      MCHARGE_DASSERT(s.start >= s.arrival - 1e-9,
                      "sojourn starts before arrival");
      clock = s.finish;
      prev = s.location;
      ++leg;
      first = false;
    }
  }
  return schedule;
}

ChargingSchedule execute_one_to_one(const model::ChargingProblem& problem,
                                    const ChargingPlan& plan,
                                    const ExecutionFaults& faults) {
  OBS_SPAN("exec.one_to_one");
  ChargingSchedule schedule;
  schedule.mode = ChargeMode::kOneToOne;
  schedule.mcvs.resize(plan.tours.size());
  schedule.charged_at.assign(problem.size(), kNeverCharged);
  resolve_starts(problem, plan, &schedule);

  // Process in global time order so that if two MCVs target the same
  // sensor, the earlier one charges it and the later one skips (zero
  // duration stop), mirroring the baselines' tie handling.
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  for (std::uint32_t k = 0; k < plan.tours.size(); ++k) {
    if (plan.tours[k].empty()) continue;
    if (faults.breakdown_of(k) == 0) {
      abort_tour(plan, k, 0, &schedule.mcvs[k]);
    } else {
      events.push(
          {start_leg(problem, plan, faults, k, plan.tours[k][0], 0), k, 0});
    }
  }
  std::vector<char> committed(problem.size(), 0);
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const auto& tour = plan.tours[ev.mcv];
    const std::uint32_t loc = tour[ev.tour_pos];

    Sojourn sojourn;
    sojourn.location = loc;
    sojourn.arrival = ev.time;
    sojourn.start = ev.time;
    double duration = 0.0;
    if (!committed[loc]) {
      committed[loc] = 1;
      duration = problem.charge_seconds(loc);
      if (faults.charge_multiplier) {
        duration *= faults.charge_multiplier(loc);
      }
      sojourn.charged = {loc};
      schedule.charged_at[loc] = ev.time + duration;
    }
    sojourn.finish = ev.time + duration;
    schedule.mcvs[ev.mcv].sojourns.push_back(std::move(sojourn));

    if (ev.tour_pos + 1 >= faults.breakdown_of(ev.mcv)) {
      abort_tour(plan, ev.mcv, ev.tour_pos + 1, &schedule.mcvs[ev.mcv]);
      continue;
    }

    if (ev.tour_pos + 1 < tour.size()) {
      const double travel = leg_time(problem, faults, ev.mcv, ev.tour_pos + 1,
                                     loc, tour[ev.tour_pos + 1]);
      events.push({ev.time + duration + travel, ev.mcv, ev.tour_pos + 1});
    } else {
      schedule.mcvs[ev.mcv].return_time =
          ev.time + duration +
          return_leg(problem, faults, ev.mcv, tour.size(), loc);
    }
  }
  return schedule;
}

}  // namespace

ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan) {
  return execute_plan(problem, plan, ExecutionFaults{});
}

ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan,
                              const ExecutionFaults& faults) {
  MCHARGE_ASSERT(plan.starts.empty() || plan.starts.size() == plan.tours.size(),
                 "plan.starts must be empty or one per tour");
  MCHARGE_ASSERT(faults.breakdown_after.empty() ||
                     faults.breakdown_after.size() == plan.tours.size(),
                 "breakdown_after must be empty or one entry per tour");
  // Plans must not reuse a location across or within tours (node-disjoint
  // closed tours per Definition 1).
  std::vector<char> used(problem.size(), 0);
  for (const auto& tour : plan.tours) {
    for (std::uint32_t loc : tour) {
      MCHARGE_ASSERT(loc < problem.size(), "plan references unknown location");
      MCHARGE_ASSERT(!used[loc], "plans must visit each location at most once");
      used[loc] = 1;
    }
  }
  return plan.mode == ChargeMode::kMultiNode
             ? execute_multinode(problem, plan, faults, ResumeState{})
             : execute_one_to_one(problem, plan, faults);
}

ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan,
                              const ExecutionFaults& faults,
                              const ResumeState& resume) {
  MCHARGE_ASSERT(plan.mode == ChargeMode::kMultiNode,
                 "resume execution is defined for multi-node plans only");
  MCHARGE_ASSERT(plan.starts.size() == plan.tours.size(),
                 "resume plans must carry every MCV's current position");
  MCHARGE_ASSERT(faults.breakdown_after.empty() ||
                     faults.breakdown_after.size() == plan.tours.size(),
                 "breakdown_after must be empty or one entry per tour");
  std::vector<char> used(problem.size(), 0);
  for (const auto& tour : plan.tours) {
    for (std::uint32_t loc : tour) {
      MCHARGE_ASSERT(loc < problem.size(), "plan references unknown location");
      MCHARGE_ASSERT(!used[loc], "plans must visit each location at most once");
      used[loc] = 1;
    }
  }
  return execute_multinode(problem, plan, faults, resume);
}

}  // namespace mcharge::sched
