#include "schedule/execute.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"

namespace mcharge::sched {

namespace {

struct Event {
  double time;
  std::uint32_t mcv;
  std::size_t tour_pos;  ///< index of the location being visited

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return mcv > other.mcv;
  }
};

/// A committed charging interval used for conflict detection.
struct ActiveSojourn {
  std::uint32_t mcv;
  std::uint32_t location;
  double start;
  double finish;
};

/// Travel time from MCV k's start position to location `loc`.
double start_leg(const model::ChargingProblem& problem,
                 const ChargingPlan& plan, std::uint32_t mcv,
                 std::uint32_t loc) {
  const geom::Point start = plan.start_of(mcv, problem.depot());
  return geom::distance(start, problem.position(loc)) / problem.speed();
}

void resolve_starts(const model::ChargingProblem& problem,
                    const ChargingPlan& plan, ChargingSchedule* schedule) {
  schedule->starts.clear();
  for (std::size_t k = 0; k < plan.tours.size(); ++k) {
    schedule->starts.push_back(plan.start_of(k, problem.depot()));
  }
}

ChargingSchedule execute_multinode(const model::ChargingProblem& problem,
                                   const ChargingPlan& plan) {
  ChargingSchedule schedule;
  schedule.mode = ChargeMode::kMultiNode;
  schedule.mcvs.resize(plan.tours.size());
  schedule.charged_at.assign(problem.size(), kNeverCharged);
  resolve_starts(problem, plan, &schedule);

  // `committed_for` marks sensors that are (or will be) fully charged by an
  // already-committed sojourn, so later sojourns exclude them from tau'.
  std::vector<char> committed(problem.size(), 0);
  std::vector<ActiveSojourn> log;  // all committed sojourns with duration > 0

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  for (std::uint32_t k = 0; k < plan.tours.size(); ++k) {
    if (!plan.tours[k].empty()) {
      events.push({start_leg(problem, plan, k, plan.tours[k][0]), k, 0});
    } else {
      schedule.mcvs[k].return_time = 0.0;
    }
  }

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    const auto& tour = plan.tours[ev.mcv];
    const std::uint32_t loc = tour[ev.tour_pos];

    // Sensors this sojourn would charge.
    std::vector<std::uint32_t> to_charge;
    for (std::uint32_t u : problem.coverage(loc)) {
      if (!committed[u]) to_charge.push_back(u);
    }
    double duration = 0.0;
    for (std::uint32_t u : to_charge) {
      duration = std::max(duration, problem.charge_seconds(u));
    }

    double start = ev.time;
    if (duration > 0.0) {
      // Wait out any committed conflicting interval still active at/after
      // `start`: another MCV whose charging disk shares a sensor with ours.
      double wait_until = start;
      for (const auto& active : log) {
        if (active.mcv == ev.mcv) continue;
        if (active.finish <= start) continue;
        if (problem.overlapping(active.location, loc)) {
          wait_until = std::max(wait_until, active.finish);
        }
      }
      if (wait_until > start) {
        // Re-queue at the conflict's end: conditions may change by then (a
        // third MCV may commit another conflicting interval meanwhile).
        // True arrival times are rebuilt from travel legs after the loop.
        events.push({wait_until, ev.mcv, ev.tour_pos});
        continue;
      }
    }

    // Commit the sojourn.
    Sojourn sojourn;
    sojourn.location = loc;
    sojourn.arrival = ev.time;  // refined below via arrival tracking
    sojourn.start = start;
    sojourn.finish = start + duration;
    sojourn.charged = to_charge;
    for (std::uint32_t u : to_charge) {
      committed[u] = 1;
      schedule.charged_at[u] = sojourn.finish;
    }
    if (duration > 0.0) {
      log.push_back({ev.mcv, loc, sojourn.start, sojourn.finish});
    }
    schedule.mcvs[ev.mcv].sojourns.push_back(std::move(sojourn));

    // Next leg.
    if (ev.tour_pos + 1 < tour.size()) {
      const double travel = problem.travel(loc, tour[ev.tour_pos + 1]);
      events.push({start + duration + travel, ev.mcv, ev.tour_pos + 1});
    } else {
      schedule.mcvs[ev.mcv].return_time =
          start + duration + problem.travel_depot(loc);
    }
  }

  // Fix up arrival times: an event re-queued by waiting loses its original
  // arrival; recompute arrivals from travel legs so wait() is meaningful.
  for (std::uint32_t k = 0; k < schedule.mcvs.size(); ++k) {
    auto& mcv = schedule.mcvs[k];
    double clock = 0.0;
    std::uint32_t prev = 0;
    bool first = true;
    for (auto& s : mcv.sojourns) {
      clock += first ? start_leg(problem, plan, k, s.location)
                     : problem.travel(prev, s.location);
      s.arrival = clock;
      MCHARGE_DASSERT(s.start >= s.arrival - 1e-9,
                      "sojourn starts before arrival");
      clock = s.finish;
      prev = s.location;
      first = false;
    }
  }
  return schedule;
}

ChargingSchedule execute_one_to_one(const model::ChargingProblem& problem,
                                    const ChargingPlan& plan) {
  ChargingSchedule schedule;
  schedule.mode = ChargeMode::kOneToOne;
  schedule.mcvs.resize(plan.tours.size());
  schedule.charged_at.assign(problem.size(), kNeverCharged);
  resolve_starts(problem, plan, &schedule);

  // Process in global time order so that if two MCVs target the same
  // sensor, the earlier one charges it and the later one skips (zero
  // duration stop), mirroring the baselines' tie handling.
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  for (std::uint32_t k = 0; k < plan.tours.size(); ++k) {
    if (!plan.tours[k].empty()) {
      events.push({start_leg(problem, plan, k, plan.tours[k][0]), k, 0});
    }
  }
  std::vector<char> committed(problem.size(), 0);
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const auto& tour = plan.tours[ev.mcv];
    const std::uint32_t loc = tour[ev.tour_pos];

    Sojourn sojourn;
    sojourn.location = loc;
    sojourn.arrival = ev.time;
    sojourn.start = ev.time;
    double duration = 0.0;
    if (!committed[loc]) {
      committed[loc] = 1;
      duration = problem.charge_seconds(loc);
      sojourn.charged = {loc};
      schedule.charged_at[loc] = ev.time + duration;
    }
    sojourn.finish = ev.time + duration;
    schedule.mcvs[ev.mcv].sojourns.push_back(std::move(sojourn));

    if (ev.tour_pos + 1 < tour.size()) {
      const double travel = problem.travel(loc, tour[ev.tour_pos + 1]);
      events.push({ev.time + duration + travel, ev.mcv, ev.tour_pos + 1});
    } else {
      schedule.mcvs[ev.mcv].return_time =
          ev.time + duration + problem.travel_depot(loc);
    }
  }
  return schedule;
}

}  // namespace

ChargingSchedule execute_plan(const model::ChargingProblem& problem,
                              const ChargingPlan& plan) {
  MCHARGE_ASSERT(plan.starts.empty() || plan.starts.size() == plan.tours.size(),
                 "plan.starts must be empty or one per tour");
  // Plans must not reuse a location across or within tours (node-disjoint
  // closed tours per Definition 1).
  std::vector<char> used(problem.size(), 0);
  for (const auto& tour : plan.tours) {
    for (std::uint32_t loc : tour) {
      MCHARGE_ASSERT(loc < problem.size(), "plan references unknown location");
      MCHARGE_ASSERT(!used[loc], "plans must visit each location at most once");
      used[loc] = 1;
    }
  }
  return plan.mode == ChargeMode::kMultiNode
             ? execute_multinode(problem, plan)
             : execute_one_to_one(problem, plan);
}

}  // namespace mcharge::sched
