#include "schedule/estimate.h"

#include <algorithm>

#include "util/assert.h"

namespace mcharge::sched {

std::vector<double> estimate_tour_bounds(const model::ChargingProblem& problem,
                                         const ChargingPlan& plan) {
  std::vector<double> bounds;
  bounds.reserve(plan.tours.size());
  for (std::size_t k = 0; k < plan.tours.size(); ++k) {
    const auto& tour = plan.tours[k];
    if (tour.empty()) {
      bounds.push_back(0.0);
      continue;
    }
    const geom::Point start = plan.start_of(k, problem.depot());
    double total =
        geom::distance(start, problem.position(tour.front())) /
        problem.speed();
    for (std::size_t l = 0; l < tour.size(); ++l) {
      total += plan.mode == ChargeMode::kMultiNode
                   ? problem.tau(tour[l])
                   : problem.charge_seconds(tour[l]);
      if (l + 1 < tour.size()) total += problem.travel(tour[l], tour[l + 1]);
    }
    total += problem.travel_depot(tour.back());
    bounds.push_back(total);
  }
  return bounds;
}

std::vector<double> estimate_tour_energy(const model::ChargingProblem& problem,
                                         const ChargingPlan& plan,
                                         const energy::McvBudgetSpec& spec) {
  std::vector<double> draws;
  draws.reserve(plan.tours.size());
  for (std::size_t k = 0; k < plan.tours.size(); ++k) {
    const auto& tour = plan.tours[k];
    if (tour.empty()) {
      draws.push_back(0.0);
      continue;
    }
    const geom::Point start = plan.start_of(k, problem.depot());
    double meters = geom::distance(start, problem.position(tour.front()));
    double transfer_s = 0.0;
    for (std::size_t l = 0; l < tour.size(); ++l) {
      transfer_s += plan.mode == ChargeMode::kMultiNode
                        ? problem.tau(tour[l])
                        : problem.charge_seconds(tour[l]);
      if (l + 1 < tour.size()) {
        meters += geom::distance(problem.position(tour[l]),
                                 problem.position(tour[l + 1]));
      }
    }
    meters += geom::distance(problem.position(tour.back()), problem.depot());
    draws.push_back(spec.travel_cost_j(meters) +
                    spec.transfer_cost_j(transfer_s *
                                         problem.charging_rate_w()));
  }
  return draws;
}

double estimate_longest_delay_bound(const model::ChargingProblem& problem,
                                    const ChargingPlan& plan) {
  double worst = 0.0;
  for (double b : estimate_tour_bounds(problem, plan)) {
    worst = std::max(worst, b);
  }
  return worst;
}

}  // namespace mcharge::sched
