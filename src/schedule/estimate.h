// Plan-time delay estimation (Eq. (5) of the paper).
//
// Before execution, the delay of MCV k's tour can be upper-bounded by
// charging tau(v) (Eq. (2): the worst case, as if nothing in v's disk had
// been charged yet) at every stop:
//
//   T(k) = sum_l [ tau(v_l) + travel(v_l -> v_{l+1}) ] + travel back,
//
// while the executed delay T'(k) uses the de-duplicated tau' (Eq. (3)) and
// satisfies T'(k) <= T(k) for any schedule that never waits (the paper's
// Section III-C claim; executor waiting can exceed the bound, which is
// exactly why Appro's conflict-free construction matters).
#pragma once

#include <vector>

#include "energy/mcv_battery.h"
#include "model/charging_problem.h"
#include "schedule/plan.h"

namespace mcharge::sched {

/// Per-MCV upper bounds T(k) for a plan (Eq. (5)). For one-to-one plans
/// tau(v) degenerates to t_v, making the estimate exact rather than an
/// upper bound.
std::vector<double> estimate_tour_bounds(const model::ChargingProblem& problem,
                                         const ChargingPlan& plan);

/// max_k T(k).
double estimate_longest_delay_bound(const model::ChargingProblem& problem,
                                    const ChargingPlan& plan);

/// Per-MCV planned energy draw under `spec`: the tour's full driving
/// distance (start -> stops -> depot) at move_cost_j_per_m plus the
/// worst-case transfer energy per stop (tau(v) in multi-node mode, t_v in
/// one-to-one mode, times the charging rate over the transfer efficiency).
/// Like estimate_tour_bounds this upper-bounds the executed draw: tau'
/// de-duplication can only shorten sojourns, and an execution never drives
/// farther than its plan. A tour whose estimate fits spec.capacity_j is
/// therefore guaranteed not to exhaust mid-round (absent charge jitter).
/// The cost model is applied regardless of spec.enabled(); the capacity
/// only gates the executor.
std::vector<double> estimate_tour_energy(const model::ChargingProblem& problem,
                                         const ChargingPlan& plan,
                                         const energy::McvBudgetSpec& spec);

}  // namespace mcharge::sched
