file(REMOVE_RECURSE
  "CMakeFiles/fig4_vary_bmax.dir/fig4_vary_bmax.cpp.o"
  "CMakeFiles/fig4_vary_bmax.dir/fig4_vary_bmax.cpp.o.d"
  "fig4_vary_bmax"
  "fig4_vary_bmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vary_bmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
