
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_vary_bmax.cpp" "bench/CMakeFiles/fig4_vary_bmax.dir/fig4_vary_bmax.cpp.o" "gcc" "bench/CMakeFiles/fig4_vary_bmax.dir/fig4_vary_bmax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcharge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcharge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mcharge_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tsp/CMakeFiles/mcharge_tsp.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/mcharge_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/assignment/CMakeFiles/mcharge_assignment.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mcharge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/mcharge_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mcharge_model.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mcharge_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcharge_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mcharge_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcharge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
