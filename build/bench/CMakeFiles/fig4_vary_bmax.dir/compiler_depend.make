# Empty compiler generated dependencies file for fig4_vary_bmax.
# This may be replaced when dependencies are built.
