# Empty dependencies file for fig3_vary_n.
# This may be replaced when dependencies are built.
