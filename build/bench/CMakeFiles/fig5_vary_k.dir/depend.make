# Empty dependencies file for fig5_vary_k.
# This may be replaced when dependencies are built.
