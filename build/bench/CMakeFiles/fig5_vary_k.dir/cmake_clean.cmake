file(REMOVE_RECURSE
  "CMakeFiles/fig5_vary_k.dir/fig5_vary_k.cpp.o"
  "CMakeFiles/fig5_vary_k.dir/fig5_vary_k.cpp.o.d"
  "fig5_vary_k"
  "fig5_vary_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vary_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
