file(REMOVE_RECURSE
  "libmcharge_viz.a"
)
