
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/render.cpp" "src/viz/CMakeFiles/mcharge_viz.dir/render.cpp.o" "gcc" "src/viz/CMakeFiles/mcharge_viz.dir/render.cpp.o.d"
  "/root/repo/src/viz/svg.cpp" "src/viz/CMakeFiles/mcharge_viz.dir/svg.cpp.o" "gcc" "src/viz/CMakeFiles/mcharge_viz.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mcharge_model.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/mcharge_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcharge_util.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mcharge_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcharge_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mcharge_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
