file(REMOVE_RECURSE
  "CMakeFiles/mcharge_viz.dir/render.cpp.o"
  "CMakeFiles/mcharge_viz.dir/render.cpp.o.d"
  "CMakeFiles/mcharge_viz.dir/svg.cpp.o"
  "CMakeFiles/mcharge_viz.dir/svg.cpp.o.d"
  "libmcharge_viz.a"
  "libmcharge_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
