# Empty dependencies file for mcharge_viz.
# This may be replaced when dependencies are built.
