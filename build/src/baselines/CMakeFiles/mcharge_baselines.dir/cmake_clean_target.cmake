file(REMOVE_RECURSE
  "libmcharge_baselines.a"
)
