# Empty compiler generated dependencies file for mcharge_baselines.
# This may be replaced when dependencies are built.
