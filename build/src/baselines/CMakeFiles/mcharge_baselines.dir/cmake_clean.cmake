file(REMOVE_RECURSE
  "CMakeFiles/mcharge_baselines.dir/aa.cpp.o"
  "CMakeFiles/mcharge_baselines.dir/aa.cpp.o.d"
  "CMakeFiles/mcharge_baselines.dir/greedy_cover.cpp.o"
  "CMakeFiles/mcharge_baselines.dir/greedy_cover.cpp.o.d"
  "CMakeFiles/mcharge_baselines.dir/kedf.cpp.o"
  "CMakeFiles/mcharge_baselines.dir/kedf.cpp.o.d"
  "CMakeFiles/mcharge_baselines.dir/kminmax.cpp.o"
  "CMakeFiles/mcharge_baselines.dir/kminmax.cpp.o.d"
  "CMakeFiles/mcharge_baselines.dir/netwrap.cpp.o"
  "CMakeFiles/mcharge_baselines.dir/netwrap.cpp.o.d"
  "libmcharge_baselines.a"
  "libmcharge_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
