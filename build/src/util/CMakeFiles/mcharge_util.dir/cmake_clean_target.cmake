file(REMOVE_RECURSE
  "libmcharge_util.a"
)
