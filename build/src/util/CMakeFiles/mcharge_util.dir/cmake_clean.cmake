file(REMOVE_RECURSE
  "CMakeFiles/mcharge_util.dir/cli.cpp.o"
  "CMakeFiles/mcharge_util.dir/cli.cpp.o.d"
  "CMakeFiles/mcharge_util.dir/rng.cpp.o"
  "CMakeFiles/mcharge_util.dir/rng.cpp.o.d"
  "CMakeFiles/mcharge_util.dir/stats.cpp.o"
  "CMakeFiles/mcharge_util.dir/stats.cpp.o.d"
  "CMakeFiles/mcharge_util.dir/table.cpp.o"
  "CMakeFiles/mcharge_util.dir/table.cpp.o.d"
  "libmcharge_util.a"
  "libmcharge_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
