# Empty compiler generated dependencies file for mcharge_util.
# This may be replaced when dependencies are built.
