file(REMOVE_RECURSE
  "libmcharge_model.a"
)
