file(REMOVE_RECURSE
  "CMakeFiles/mcharge_model.dir/charging_problem.cpp.o"
  "CMakeFiles/mcharge_model.dir/charging_problem.cpp.o.d"
  "CMakeFiles/mcharge_model.dir/network.cpp.o"
  "CMakeFiles/mcharge_model.dir/network.cpp.o.d"
  "libmcharge_model.a"
  "libmcharge_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
