# Empty compiler generated dependencies file for mcharge_model.
# This may be replaced when dependencies are built.
