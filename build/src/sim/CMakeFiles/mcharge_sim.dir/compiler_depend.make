# Empty compiler generated dependencies file for mcharge_sim.
# This may be replaced when dependencies are built.
