file(REMOVE_RECURSE
  "libmcharge_sim.a"
)
