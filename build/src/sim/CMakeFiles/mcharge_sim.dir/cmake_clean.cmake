file(REMOVE_RECURSE
  "CMakeFiles/mcharge_sim.dir/simulation.cpp.o"
  "CMakeFiles/mcharge_sim.dir/simulation.cpp.o.d"
  "libmcharge_sim.a"
  "libmcharge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
