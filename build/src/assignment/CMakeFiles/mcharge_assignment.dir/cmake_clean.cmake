file(REMOVE_RECURSE
  "CMakeFiles/mcharge_assignment.dir/hungarian.cpp.o"
  "CMakeFiles/mcharge_assignment.dir/hungarian.cpp.o.d"
  "libmcharge_assignment.a"
  "libmcharge_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
