# Empty dependencies file for mcharge_assignment.
# This may be replaced when dependencies are built.
