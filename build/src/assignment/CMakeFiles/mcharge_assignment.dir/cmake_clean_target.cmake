file(REMOVE_RECURSE
  "libmcharge_assignment.a"
)
