# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geometry")
subdirs("graph")
subdirs("matching")
subdirs("assignment")
subdirs("cluster")
subdirs("tsp")
subdirs("energy")
subdirs("model")
subdirs("schedule")
subdirs("io")
subdirs("viz")
subdirs("core")
subdirs("baselines")
subdirs("sim")
