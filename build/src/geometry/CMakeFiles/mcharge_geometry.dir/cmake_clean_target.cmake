file(REMOVE_RECURSE
  "libmcharge_geometry.a"
)
