file(REMOVE_RECURSE
  "CMakeFiles/mcharge_geometry.dir/field.cpp.o"
  "CMakeFiles/mcharge_geometry.dir/field.cpp.o.d"
  "CMakeFiles/mcharge_geometry.dir/grid_index.cpp.o"
  "CMakeFiles/mcharge_geometry.dir/grid_index.cpp.o.d"
  "CMakeFiles/mcharge_geometry.dir/point.cpp.o"
  "CMakeFiles/mcharge_geometry.dir/point.cpp.o.d"
  "libmcharge_geometry.a"
  "libmcharge_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
