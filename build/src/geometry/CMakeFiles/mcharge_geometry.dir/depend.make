# Empty dependencies file for mcharge_geometry.
# This may be replaced when dependencies are built.
