file(REMOVE_RECURSE
  "CMakeFiles/mcharge_graph.dir/dsu.cpp.o"
  "CMakeFiles/mcharge_graph.dir/dsu.cpp.o.d"
  "CMakeFiles/mcharge_graph.dir/euler.cpp.o"
  "CMakeFiles/mcharge_graph.dir/euler.cpp.o.d"
  "CMakeFiles/mcharge_graph.dir/graph.cpp.o"
  "CMakeFiles/mcharge_graph.dir/graph.cpp.o.d"
  "CMakeFiles/mcharge_graph.dir/mis.cpp.o"
  "CMakeFiles/mcharge_graph.dir/mis.cpp.o.d"
  "CMakeFiles/mcharge_graph.dir/mst.cpp.o"
  "CMakeFiles/mcharge_graph.dir/mst.cpp.o.d"
  "CMakeFiles/mcharge_graph.dir/traversal.cpp.o"
  "CMakeFiles/mcharge_graph.dir/traversal.cpp.o.d"
  "CMakeFiles/mcharge_graph.dir/unit_disk.cpp.o"
  "CMakeFiles/mcharge_graph.dir/unit_disk.cpp.o.d"
  "libmcharge_graph.a"
  "libmcharge_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
