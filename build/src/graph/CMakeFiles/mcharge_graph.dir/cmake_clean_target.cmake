file(REMOVE_RECURSE
  "libmcharge_graph.a"
)
