
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dsu.cpp" "src/graph/CMakeFiles/mcharge_graph.dir/dsu.cpp.o" "gcc" "src/graph/CMakeFiles/mcharge_graph.dir/dsu.cpp.o.d"
  "/root/repo/src/graph/euler.cpp" "src/graph/CMakeFiles/mcharge_graph.dir/euler.cpp.o" "gcc" "src/graph/CMakeFiles/mcharge_graph.dir/euler.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/mcharge_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/mcharge_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/mis.cpp" "src/graph/CMakeFiles/mcharge_graph.dir/mis.cpp.o" "gcc" "src/graph/CMakeFiles/mcharge_graph.dir/mis.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/graph/CMakeFiles/mcharge_graph.dir/mst.cpp.o" "gcc" "src/graph/CMakeFiles/mcharge_graph.dir/mst.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "src/graph/CMakeFiles/mcharge_graph.dir/traversal.cpp.o" "gcc" "src/graph/CMakeFiles/mcharge_graph.dir/traversal.cpp.o.d"
  "/root/repo/src/graph/unit_disk.cpp" "src/graph/CMakeFiles/mcharge_graph.dir/unit_disk.cpp.o" "gcc" "src/graph/CMakeFiles/mcharge_graph.dir/unit_disk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/mcharge_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcharge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
