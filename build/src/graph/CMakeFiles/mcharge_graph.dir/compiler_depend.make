# Empty compiler generated dependencies file for mcharge_graph.
# This may be replaced when dependencies are built.
