file(REMOVE_RECURSE
  "libmcharge_energy.a"
)
