# Empty dependencies file for mcharge_energy.
# This may be replaced when dependencies are built.
