file(REMOVE_RECURSE
  "CMakeFiles/mcharge_energy.dir/battery.cpp.o"
  "CMakeFiles/mcharge_energy.dir/battery.cpp.o.d"
  "CMakeFiles/mcharge_energy.dir/consumption.cpp.o"
  "CMakeFiles/mcharge_energy.dir/consumption.cpp.o.d"
  "CMakeFiles/mcharge_energy.dir/radio.cpp.o"
  "CMakeFiles/mcharge_energy.dir/radio.cpp.o.d"
  "CMakeFiles/mcharge_energy.dir/routing.cpp.o"
  "CMakeFiles/mcharge_energy.dir/routing.cpp.o.d"
  "libmcharge_energy.a"
  "libmcharge_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
