
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/kmeans.cpp" "src/cluster/CMakeFiles/mcharge_cluster.dir/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/mcharge_cluster.dir/kmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/mcharge_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcharge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
