# Empty compiler generated dependencies file for mcharge_cluster.
# This may be replaced when dependencies are built.
