file(REMOVE_RECURSE
  "libmcharge_cluster.a"
)
