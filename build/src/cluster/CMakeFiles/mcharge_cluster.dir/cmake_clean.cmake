file(REMOVE_RECURSE
  "CMakeFiles/mcharge_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/mcharge_cluster.dir/kmeans.cpp.o.d"
  "libmcharge_cluster.a"
  "libmcharge_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
