file(REMOVE_RECURSE
  "libmcharge_schedule.a"
)
