# Empty dependencies file for mcharge_schedule.
# This may be replaced when dependencies are built.
