file(REMOVE_RECURSE
  "CMakeFiles/mcharge_schedule.dir/estimate.cpp.o"
  "CMakeFiles/mcharge_schedule.dir/estimate.cpp.o.d"
  "CMakeFiles/mcharge_schedule.dir/execute.cpp.o"
  "CMakeFiles/mcharge_schedule.dir/execute.cpp.o.d"
  "CMakeFiles/mcharge_schedule.dir/plan.cpp.o"
  "CMakeFiles/mcharge_schedule.dir/plan.cpp.o.d"
  "CMakeFiles/mcharge_schedule.dir/verify.cpp.o"
  "CMakeFiles/mcharge_schedule.dir/verify.cpp.o.d"
  "libmcharge_schedule.a"
  "libmcharge_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
