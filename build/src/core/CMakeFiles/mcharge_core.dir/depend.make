# Empty dependencies file for mcharge_core.
# This may be replaced when dependencies are built.
