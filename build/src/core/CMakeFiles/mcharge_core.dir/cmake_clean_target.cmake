file(REMOVE_RECURSE
  "libmcharge_core.a"
)
