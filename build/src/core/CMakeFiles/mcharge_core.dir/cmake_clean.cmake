file(REMOVE_RECURSE
  "CMakeFiles/mcharge_core.dir/appro.cpp.o"
  "CMakeFiles/mcharge_core.dir/appro.cpp.o.d"
  "CMakeFiles/mcharge_core.dir/bounds.cpp.o"
  "CMakeFiles/mcharge_core.dir/bounds.cpp.o.d"
  "CMakeFiles/mcharge_core.dir/exact.cpp.o"
  "CMakeFiles/mcharge_core.dir/exact.cpp.o.d"
  "CMakeFiles/mcharge_core.dir/overlap_graph.cpp.o"
  "CMakeFiles/mcharge_core.dir/overlap_graph.cpp.o.d"
  "CMakeFiles/mcharge_core.dir/replan.cpp.o"
  "CMakeFiles/mcharge_core.dir/replan.cpp.o.d"
  "libmcharge_core.a"
  "libmcharge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
