# Empty compiler generated dependencies file for mcharge_tsp.
# This may be replaced when dependencies are built.
