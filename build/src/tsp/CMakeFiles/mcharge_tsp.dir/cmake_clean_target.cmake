file(REMOVE_RECURSE
  "libmcharge_tsp.a"
)
