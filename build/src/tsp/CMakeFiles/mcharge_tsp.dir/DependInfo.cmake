
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsp/construct.cpp" "src/tsp/CMakeFiles/mcharge_tsp.dir/construct.cpp.o" "gcc" "src/tsp/CMakeFiles/mcharge_tsp.dir/construct.cpp.o.d"
  "/root/repo/src/tsp/exact.cpp" "src/tsp/CMakeFiles/mcharge_tsp.dir/exact.cpp.o" "gcc" "src/tsp/CMakeFiles/mcharge_tsp.dir/exact.cpp.o.d"
  "/root/repo/src/tsp/improve.cpp" "src/tsp/CMakeFiles/mcharge_tsp.dir/improve.cpp.o" "gcc" "src/tsp/CMakeFiles/mcharge_tsp.dir/improve.cpp.o.d"
  "/root/repo/src/tsp/split.cpp" "src/tsp/CMakeFiles/mcharge_tsp.dir/split.cpp.o" "gcc" "src/tsp/CMakeFiles/mcharge_tsp.dir/split.cpp.o.d"
  "/root/repo/src/tsp/tour_problem.cpp" "src/tsp/CMakeFiles/mcharge_tsp.dir/tour_problem.cpp.o" "gcc" "src/tsp/CMakeFiles/mcharge_tsp.dir/tour_problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/mcharge_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcharge_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/mcharge_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcharge_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
