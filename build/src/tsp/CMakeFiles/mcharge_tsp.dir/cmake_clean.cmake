file(REMOVE_RECURSE
  "CMakeFiles/mcharge_tsp.dir/construct.cpp.o"
  "CMakeFiles/mcharge_tsp.dir/construct.cpp.o.d"
  "CMakeFiles/mcharge_tsp.dir/exact.cpp.o"
  "CMakeFiles/mcharge_tsp.dir/exact.cpp.o.d"
  "CMakeFiles/mcharge_tsp.dir/improve.cpp.o"
  "CMakeFiles/mcharge_tsp.dir/improve.cpp.o.d"
  "CMakeFiles/mcharge_tsp.dir/split.cpp.o"
  "CMakeFiles/mcharge_tsp.dir/split.cpp.o.d"
  "CMakeFiles/mcharge_tsp.dir/tour_problem.cpp.o"
  "CMakeFiles/mcharge_tsp.dir/tour_problem.cpp.o.d"
  "libmcharge_tsp.a"
  "libmcharge_tsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
