file(REMOVE_RECURSE
  "libmcharge_io.a"
)
