file(REMOVE_RECURSE
  "CMakeFiles/mcharge_io.dir/instance_io.cpp.o"
  "CMakeFiles/mcharge_io.dir/instance_io.cpp.o.d"
  "CMakeFiles/mcharge_io.dir/schedule_io.cpp.o"
  "CMakeFiles/mcharge_io.dir/schedule_io.cpp.o.d"
  "libmcharge_io.a"
  "libmcharge_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
