# Empty compiler generated dependencies file for mcharge_io.
# This may be replaced when dependencies are built.
