file(REMOVE_RECURSE
  "CMakeFiles/mcharge_matching.dir/blossom.cpp.o"
  "CMakeFiles/mcharge_matching.dir/blossom.cpp.o.d"
  "CMakeFiles/mcharge_matching.dir/matching.cpp.o"
  "CMakeFiles/mcharge_matching.dir/matching.cpp.o.d"
  "libmcharge_matching.a"
  "libmcharge_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcharge_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
