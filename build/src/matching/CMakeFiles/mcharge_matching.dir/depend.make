# Empty dependencies file for mcharge_matching.
# This may be replaced when dependencies are built.
