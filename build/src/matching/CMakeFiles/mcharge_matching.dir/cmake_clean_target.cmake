file(REMOVE_RECURSE
  "libmcharge_matching.a"
)
