# Empty compiler generated dependencies file for live_operations.
# This may be replaced when dependencies are built.
