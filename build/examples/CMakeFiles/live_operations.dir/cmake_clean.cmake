file(REMOVE_RECURSE
  "CMakeFiles/live_operations.dir/live_operations.cpp.o"
  "CMakeFiles/live_operations.dir/live_operations.cpp.o.d"
  "live_operations"
  "live_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
