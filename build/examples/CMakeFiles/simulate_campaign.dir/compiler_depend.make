# Empty compiler generated dependencies file for simulate_campaign.
# This may be replaced when dependencies are built.
