file(REMOVE_RECURSE
  "CMakeFiles/simulate_campaign.dir/simulate_campaign.cpp.o"
  "CMakeFiles/simulate_campaign.dir/simulate_campaign.cpp.o.d"
  "simulate_campaign"
  "simulate_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
