# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/assignment_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/tsp_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/appro_test[1]_include.cmake")
include("/root/repo/build/tests/exact_test[1]_include.cmake")
include("/root/repo/build/tests/replan_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
