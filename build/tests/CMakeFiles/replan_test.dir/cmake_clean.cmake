file(REMOVE_RECURSE
  "CMakeFiles/replan_test.dir/replan_test.cpp.o"
  "CMakeFiles/replan_test.dir/replan_test.cpp.o.d"
  "replan_test"
  "replan_test.pdb"
  "replan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
