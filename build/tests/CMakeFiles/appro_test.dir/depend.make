# Empty dependencies file for appro_test.
# This may be replaced when dependencies are built.
