file(REMOVE_RECURSE
  "CMakeFiles/appro_test.dir/appro_test.cpp.o"
  "CMakeFiles/appro_test.dir/appro_test.cpp.o.d"
  "appro_test"
  "appro_test.pdb"
  "appro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
